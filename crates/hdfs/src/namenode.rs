//! The Namenode: namespace, block map, datanode liveness, replication
//! monitor and read/write path decisions.
//!
//! All methods are synchronous state transitions; the mediator in
//! `hog-core` provides time (heartbeat timers, transfer durations). The
//! liveness protocol mirrors HOG's:
//!
//! * while a worker runs, its datanode is `Live` (heartbeats are implicit);
//! * when the grid preempts the worker, the mediator calls
//!   [`Namenode::mark_silent`] — the node is still *believed* alive until
//!   `dead_node_timeout` (30 s in HOG, ~10 min stock) passes;
//! * a **zombie** (double-forked daemon that survived preemption, §IV-D.1)
//!   instead stays `Live` with `storage_failed = true`: the namenode keeps
//!   trusting it, reads and re-replications sourced from it fail, and only
//!   the periodic disk self-check (the paper's fix) turns it silent;
//! * [`Namenode::tick`] declares overdue nodes dead, strips their replicas
//!   and queues re-replication work, which it dispatches subject to
//!   per-node stream limits.

use crate::availability::{AvailabilitySnapshot, SiteBand};
use crate::config::HdfsConfig;
use crate::datanode::{DatanodeInfo, DnLiveness};
use crate::placement::{Candidate, PlacementPolicy};
use crate::types::{BlockId, BlockMeta, FileId, FileMeta};
use hog_net::{NodeId, Topology};
use hog_obs::{Layer, TraceEvent, Tracer};
use hog_sim_core::metrics::Counter;
use hog_sim_core::{SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A replication transfer the namenode wants executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplOrder {
    /// Block to copy.
    pub block: BlockId,
    /// Source replica holder.
    pub src: NodeId,
    /// Destination datanode.
    pub dst: NodeId,
    /// Bytes to move.
    pub bytes: u64,
}

/// Output of one namenode tick.
#[derive(Clone, Debug, Default)]
pub struct NamenodeTickOutput {
    /// Datanodes declared dead this tick.
    pub newly_dead: Vec<NodeId>,
    /// Replication transfers to start.
    pub orders: Vec<ReplOrder>,
}

/// Sentinel for "block not queued" in [`ReplQueue::bucket_of`]. `u32`
/// so every representable replica count (`expected` is `u16`, live
/// counts can briefly exceed it after report replays) maps to its own
/// bucket — the old `u16` sentinel forced a silent clamp at 65534 that
/// misfiled boundary counts into the wrong priority bucket.
const NOT_QUEUED: u32 = u32::MAX;

/// Priority-bucketed re-replication queue (Hadoop's
/// `UnderReplicatedBlocks`): queued blocks live in the bucket matching
/// their live-replica count, so the per-tick dispatch walks most-critical
/// first by concatenating buckets instead of re-sorting the whole queue
/// every tick. Membership is updated at the handful of replica-count
/// mutation sites, keeping dispatch iteration order identical to a stable
/// sort by replica count over BlockId-ascending blocks.
#[derive(Clone, Default)]
struct ReplQueue {
    /// `buckets[c]` = queued blocks with exactly `c` live replicas.
    buckets: Vec<BTreeSet<BlockId>>,
    /// Block → occupied bucket, dense by BlockId ([`NOT_QUEUED`] = absent).
    bucket_of: Vec<u32>,
    len: usize,
}

impl ReplQueue {
    /// Queue `block` under `count` live replicas, moving it if it is
    /// already queued under a stale count.
    fn insert(&mut self, block: BlockId, count: usize) {
        let idx = block.0 as usize;
        if self.bucket_of.len() <= idx {
            self.bucket_of.resize(idx + 1, NOT_QUEUED);
        }
        debug_assert!((count as u32) < NOT_QUEUED);
        let cur = self.bucket_of[idx];
        if cur as usize == count {
            return;
        }
        if cur != NOT_QUEUED {
            self.buckets[cur as usize].remove(&block);
            self.len -= 1;
        }
        if self.buckets.len() <= count {
            self.buckets.resize_with(count + 1, BTreeSet::new);
        }
        self.buckets[count].insert(block);
        self.bucket_of[idx] = count as u32;
        self.len += 1;
    }

    /// Remove `block` from the queue if present.
    fn remove(&mut self, block: BlockId) {
        let idx = block.0 as usize;
        let Some(&cur) = self.bucket_of.get(idx) else {
            return;
        };
        if cur != NOT_QUEUED {
            self.buckets[cur as usize].remove(&block);
            self.bucket_of[idx] = NOT_QUEUED;
            self.len -= 1;
        }
    }

    /// The bucket `block` currently occupies, if queued.
    fn bucket_index(&self, block: BlockId) -> Option<u32> {
        match self.bucket_of.get(block.0 as usize) {
            Some(&c) if c != NOT_QUEUED => Some(c),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued blocks, fewest-replicas bucket first, BlockId-ascending
    /// within a bucket.
    fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.buckets.iter().flat_map(|b| b.iter().copied())
    }

    /// Queued blocks in dispatch order, rotated to start at the first
    /// entry at or after `resume` in `(bucket, block)` order, wrapping
    /// around. `None` is the plain [`ReplQueue::iter`] order. Fair
    /// dispatch stores the first entry a budget-exhausted tick failed
    /// to serve and resumes there, so a standing stream of critical
    /// blocks cannot starve the high-bucket tail forever.
    fn iter_rotated(&self, resume: Option<(u32, BlockId)>) -> Vec<BlockId> {
        let mut ordered: Vec<(u32, BlockId)> = Vec::with_capacity(self.len);
        for (c, bucket) in self.buckets.iter().enumerate() {
            ordered.extend(bucket.iter().map(|&b| (c as u32, b)));
        }
        if let Some(cursor) = resume {
            let split = ordered.partition_point(|&e| e < cursor);
            ordered.rotate_left(split);
        }
        ordered.into_iter().map(|(_, b)| b).collect()
    }

    /// Structural invariant check for the proptests: every `bucket_of`
    /// entry points at a bucket actually containing the block, every
    /// bucket member is indexed back, and `len` matches. Returns a
    /// description of the first violation found.
    fn check_invariant(&self) -> Result<(), String> {
        let mut members = 0;
        for (c, bucket) in self.buckets.iter().enumerate() {
            members += bucket.len();
            for &b in bucket {
                match self.bucket_of.get(b.0 as usize) {
                    Some(&idx) if idx as usize == c => {}
                    other => {
                        return Err(format!(
                            "block {} in bucket {c} but bucket_of says {other:?}",
                            b.0
                        ));
                    }
                }
            }
        }
        for (i, &c) in self.bucket_of.iter().enumerate() {
            if c != NOT_QUEUED
                && !self
                    .buckets
                    .get(c as usize)
                    .is_some_and(|bk| bk.contains(&BlockId(i as u64)))
            {
                return Err(format!("bucket_of[{i}]={c} but bucket lacks the block"));
            }
        }
        if members != self.len {
            return Err(format!("len={} but buckets hold {members}", self.len));
        }
        Ok(())
    }
}

/// Memoized result of [`Namenode::candidates`] for the hot empty-exclude
/// allocation path (every `allocate_block` call during an upload). Valid
/// only while `epoch` matches `Namenode::dn_epoch` — bumped on every
/// datanode-record mutation — and the block size matches; `epoch` 0 never
/// matches. The cached vector is exactly what a fresh ascending scan of
/// `datanodes` would produce, so hits are bit-identical to misses.
#[derive(Clone, Default)]
struct CandCache {
    epoch: u64,
    size: u64,
    cands: Vec<Candidate>,
}

/// The HDFS master. See the module docs for the liveness protocol.
///
/// `Clone` snapshots the namenode wholesale (namespace, block map,
/// datanode records, replication queues, placement policy, rng) — the
/// master-failover checkpoint in `hog-core` is exactly such a snapshot.
#[derive(Clone)]
pub struct Namenode {
    cfg: HdfsConfig,
    policy: Box<dyn PlacementPolicy>,
    files_by_path: HashMap<String, FileId>,
    files: Vec<FileMeta>,
    blocks: Vec<BlockMeta>,
    datanodes: BTreeMap<NodeId, DatanodeInfo>,
    /// Exactly the datanodes whose liveness is `Silent`, so the per-tick
    /// death check walks suspects instead of the whole datanode map.
    /// Ascending, like a full scan of `datanodes` (audited).
    silent: BTreeSet<NodeId>,
    /// Datanodes whose liveness is `Dead`, for O(1) `reported_live`.
    dead_datanodes: usize,
    /// Generation counter for `datanodes`: any mutation of a datanode
    /// record (liveness, usage, registration) bumps it, invalidating
    /// `cand_cache`.
    dn_epoch: u64,
    cand_cache: CandCache,
    /// Blocks below their replication target, bucketed by replica count.
    needs_repl: ReplQueue,
    /// In-flight replication targets per block (counted against deficit).
    pending_repl: HashMap<BlockId, Vec<NodeId>>,
    /// Blocks holding more replicas than their per-block target, awaiting
    /// excess trims. Only ever populated on availability-policy paths —
    /// flat runs never lower a target, so this stays empty and the trim
    /// pass is a no-op.
    over_repl: BTreeSet<BlockId>,
    /// Fair-dispatch resume cursor (`cfg.repl_fairness`): the queue
    /// position of the first entry the previous budget-exhausted tick
    /// did not serve. `None` after any tick that finished its pass.
    fair_resume: Option<(u32, BlockId)>,
    /// Latest per-site availability snapshot (tells the trim pass and
    /// the boosted-block placement which sites count as stable). Soft
    /// state: deliberately not in the fsimage.
    avail_snapshot: Option<AvailabilitySnapshot>,
    /// Per-block lifetime read counters, dense by BlockId. Only bumped
    /// when the availability policy is armed; soft state.
    reads: Vec<u32>,
    rng: SimRng,
    repl_completed: Counter,
    repl_failed: Counter,
    blocks_lost: Counter,
    bad_replica_reports: Counter,
    // Counters below are outside the outcome fingerprint (which pins
    // exactly the four above) — they can grow without breaking the
    // bit-identity guarantees of existing benchmarks.
    targets_raised: Counter,
    targets_lowered: Counter,
    replicas_trimmed: Counter,
    /// Replica bytes written into HDFS, ever: pipeline commits,
    /// re-replication completions and balancer copies all count.
    bytes_written: Counter,
    /// The re-replication (repair) share of `bytes_written`.
    bytes_rereplicated: Counter,
    total_reads: Counter,
    tracer: Tracer,
}

impl Namenode {
    /// A namenode with the given config and placement policy.
    pub fn new(cfg: HdfsConfig, policy: Box<dyn PlacementPolicy>, rng: SimRng) -> Self {
        Namenode {
            cfg,
            policy,
            files_by_path: HashMap::new(),
            files: Vec::new(),
            blocks: Vec::new(),
            datanodes: BTreeMap::new(),
            silent: BTreeSet::new(),
            dead_datanodes: 0,
            dn_epoch: 1,
            cand_cache: CandCache::default(),
            needs_repl: ReplQueue::default(),
            pending_repl: HashMap::new(),
            over_repl: BTreeSet::new(),
            fair_resume: None,
            avail_snapshot: None,
            reads: Vec::new(),
            rng,
            repl_completed: Counter::new(),
            repl_failed: Counter::new(),
            blocks_lost: Counter::new(),
            bad_replica_reports: Counter::new(),
            targets_raised: Counter::new(),
            targets_lowered: Counter::new(),
            replicas_trimmed: Counter::new(),
            bytes_written: Counter::new(),
            bytes_rereplicated: Counter::new(),
            total_reads: Counter::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach the shared trace handle (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active configuration.
    pub fn config(&self) -> &HdfsConfig {
        &self.cfg
    }

    /// Swap the block placement policy (used when the policy needs
    /// topology knowledge only available after site registration, e.g.
    /// the MOON anchor site).
    pub fn set_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.policy = policy;
    }

    /// Change the default replication factor for files created from now
    /// on (the adaptive-replication extension of paper §VI: scale
    /// durability with observed grid instability). Existing files keep
    /// their factor.
    pub fn set_default_replication(&mut self, r: u16) {
        self.cfg.replication = r.max(1);
    }

    /// Retarget the replication factor of an *existing* file's blocks.
    /// Raising it queues re-replication; lowering it only stops future
    /// repairs (excess replicas are not actively deleted — Hadoop's
    /// `setrep -w` semantics minus the wait).
    pub fn set_file_replication(&mut self, file: FileId, r: u16) {
        let r = r.max(1);
        self.files[file.0 as usize].replication = r;
        let blocks = self.files[file.0 as usize].blocks.clone();
        for b in blocks {
            let meta = &mut self.blocks[b.0 as usize];
            if meta.expected == 0 {
                continue; // abandoned block
            }
            meta.expected = r;
            if meta.deficit() > 0 {
                let count = meta.replicas.len();
                self.needs_repl.insert(b, count);
            } else {
                self.needs_repl.remove(b);
            }
        }
    }

    // ------------------------------------------------------------------
    // Datanode liveness
    // ------------------------------------------------------------------

    /// Record that datanode state changed, invalidating the candidates
    /// cache. Called (conservatively, even when the mutation turns out to
    /// be a no-op) by every method that can touch a datanode record.
    #[inline]
    fn dn_changed(&mut self) {
        self.dn_epoch += 1;
    }

    /// A new datanode reported in (worker started).
    pub fn register_datanode(&mut self, now: SimTime, node: NodeId) {
        self.dn_changed();
        self.tracer
            .emit(|| TraceEvent::new(Layer::Hdfs, "dn_register").with("node", node.0));
        let old = self
            .datanodes
            .insert(node, DatanodeInfo::new(self.cfg.datanode_capacity, now));
        match old.map(|d| d.liveness) {
            Some(DnLiveness::Dead) => self.dead_datanodes -= 1,
            Some(DnLiveness::Silent) => {
                self.silent.remove(&node);
            }
            _ => {}
        }
    }

    /// The worker vanished cleanly: heartbeats stop now; death is declared
    /// after the timeout.
    pub fn mark_silent(&mut self, now: SimTime, node: NodeId) {
        self.dn_changed();
        if let Some(dn) = self.datanodes.get_mut(&node) {
            if dn.liveness == DnLiveness::Live {
                dn.liveness = DnLiveness::Silent;
                dn.last_heartbeat = now;
                self.silent.insert(node);
                self.tracer
                    .emit(|| TraceEvent::new(Layer::Hdfs, "dn_silent").with("node", node.0));
            }
        }
    }

    /// The worker was preempted but its daemon survived outside the killed
    /// process tree: heartbeats continue while storage is gone.
    pub fn mark_storage_failed(&mut self, node: NodeId) {
        self.dn_changed();
        if let Some(dn) = self.datanodes.get_mut(&node) {
            dn.storage_failed = true;
            self.tracer
                .emit(|| TraceEvent::new(Layer::Hdfs, "storage_failed").with("node", node.0));
        }
    }

    /// Whether the node's storage has failed (zombie). The *mediator* uses
    /// this to fail reads/writes; the namenode itself never consults it —
    /// zombies look healthy to it, which is the point of §IV-D.1.
    pub fn storage_failed(&self, node: NodeId) -> bool {
        self.datanodes.get(&node).is_some_and(|d| d.storage_failed)
    }

    /// Periodic tick: declare overdue silent nodes dead and dispatch
    /// replication work.
    pub fn tick(&mut self, now: SimTime, topo: &Topology) -> NamenodeTickOutput {
        let mut out = NamenodeTickOutput::default();
        // 1. Death detection. Walk only the Silent suspects
        // (`self.silent` mirrors the liveness field exactly); ascending
        // like the full-map scan this replaces, so the declaration order
        // is unchanged.
        let overdue: Vec<NodeId> = self
            .silent
            .iter()
            .copied()
            .filter(|n| {
                self.datanodes.get(n).is_some_and(|dn| {
                    now.saturating_since(dn.last_heartbeat) >= self.cfg.dead_node_timeout
                })
            })
            .collect();
        for node in overdue {
            self.declare_dead(node);
            self.tracer
                .emit(|| TraceEvent::new(Layer::Hdfs, "dn_dead").with("node", node.0));
            out.newly_dead.push(node);
        }
        // 2. Replication monitor.
        out.orders = self.dispatch_replication(topo);
        // 3. Excess-replica trims (availability policy only; `over_repl`
        // stays empty on flat runs, making this a no-op there).
        if self.cfg.availability.is_some() {
            self.dispatch_trims(topo);
        }
        for o in &out.orders {
            self.tracer.emit(|| {
                TraceEvent::new(Layer::Hdfs, "repl_order")
                    .with("block", o.block.0)
                    .with("src", o.src.0)
                    .with("dst", o.dst.0)
                    .with("bytes", o.bytes)
            });
        }
        out
    }

    fn declare_dead(&mut self, node: NodeId) {
        self.dn_changed();
        let Some(dn) = self.datanodes.get_mut(&node) else {
            return;
        };
        if dn.liveness != DnLiveness::Dead {
            self.dead_datanodes += 1;
        }
        self.silent.remove(&node);
        dn.liveness = DnLiveness::Dead;
        let hosted: Vec<BlockId> = dn.blocks.iter().copied().collect();
        dn.blocks.clear();
        dn.used = 0;
        for b in hosted {
            let meta = &mut self.blocks[b.0 as usize];
            meta.replicas.remove(&node);
            if meta.is_missing() {
                self.blocks_lost.incr();
            }
            if meta.deficit() > 0 {
                let count = meta.replicas.len();
                self.needs_repl.insert(b, count);
            }
        }
    }

    /// Number of datanodes the namenode currently believes alive (`Live`
    /// or `Silent`-within-timeout) — the "reported nodes" curve of Fig. 5.
    /// O(1): `dead_datanodes` is maintained at every liveness transition.
    pub fn reported_live(&self) -> usize {
        self.datanodes.len() - self.dead_datanodes
    }

    /// Number of datanodes heartbeating right now.
    /// O(1): everything neither dead nor on the silent suspect list.
    pub fn live_count(&self) -> usize {
        self.datanodes.len() - self.dead_datanodes - self.silent.len()
    }

    /// Whether the namenode currently believes `node` usable.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.datanodes
            .get(&node)
            .is_some_and(|d| d.liveness == DnLiveness::Live)
    }

    /// Inspect a datanode record.
    pub fn datanode(&self, node: NodeId) -> Option<&DatanodeInfo> {
        self.datanodes.get(&node)
    }

    // ------------------------------------------------------------------
    // Namespace & write path
    // ------------------------------------------------------------------

    /// Create an (empty, incomplete) file with the given replication.
    /// Panics if the path exists — experiment drivers own unique naming.
    pub fn create_file(&mut self, path: impl Into<String>, replication: u16) -> FileId {
        let path = path.into();
        assert!(
            !self.files_by_path.contains_key(&path),
            "file exists: {path}"
        );
        let id = FileId(self.files.len() as u32);
        self.files_by_path.insert(path.clone(), id);
        self.files.push(FileMeta {
            path,
            blocks: Vec::new(),
            replication,
            complete: false,
        });
        id
    }

    /// Create a file with the config's default replication.
    pub fn create_file_default(&mut self, path: impl Into<String>) -> FileId {
        let r = self.cfg.replication;
        self.create_file(path, r)
    }

    /// Allocate the next block of `file` and choose its replica pipeline.
    /// Returns `None` when no datanode can accept the block (cluster too
    /// small/full) — the caller retries later.
    pub fn allocate_block(
        &mut self,
        file: FileId,
        size: u64,
        writer: Option<NodeId>,
        topo: &Topology,
    ) -> Option<(BlockId, Vec<NodeId>)> {
        self.allocate_block_excluding(file, size, writer, &BTreeSet::new(), topo)
    }

    /// Like [`Namenode::allocate_block`], excluding datanodes the writing
    /// client has already seen fail (HDFS clients carry an excluded-nodes
    /// list across pipeline retries — without it, a zombie datanode that
    /// stays "emptiest" would be re-chosen as pipeline head forever).
    pub fn allocate_block_excluding(
        &mut self,
        file: FileId,
        size: u64,
        writer: Option<NodeId>,
        exclude: &BTreeSet<NodeId>,
        topo: &Topology,
    ) -> Option<(BlockId, Vec<NodeId>)> {
        let file_repl = self.files[file.0 as usize].replication;
        // With the availability policy armed, blocks are *born* at the
        // policy's birth target instead of the file's flat factor — the
        // retarget sweep then buys extra copies back for the blocks that
        // turn out hot or risky. Trimming alone couldn't deliver this:
        // the pipeline would still write the flat factor first.
        let repl = match &self.cfg.availability {
            Some(p) => p.birth_target(file_repl),
            None => file_repl,
        };
        // Reuse the candidate scan across back-to-back allocations (an
        // upload allocates one block per pipeline round-trip with no
        // datanode churn in between). The scan is O(all datanodes) — at
        // BENCH_scale tiers it dominates the write path without this.
        // Taking the cache out of `self` sidesteps the borrow conflict
        // with `self.policy`/`self.rng` below; an excluded-nodes retry is
        // rare, so it recomputes and leaves the cache invalidated.
        let mut cache = std::mem::take(&mut self.cand_cache);
        let usable =
            exclude.is_empty() && cache.epoch == self.dn_epoch && cache.size == size;
        if !usable {
            cache.cands.clear();
            cache.cands.extend(
                self.datanodes
                    .iter()
                    .filter(|(n, dn)| dn.can_accept(size) && !exclude.contains(n))
                    .map(|(&n, dn)| Candidate {
                        node: n,
                        site: topo.site_of(n),
                        free: dn.free(),
                    }),
            );
            if exclude.is_empty() {
                cache.epoch = self.dn_epoch;
                cache.size = size;
            } else {
                cache.epoch = 0;
            }
        }
        if cache.cands.is_empty() {
            self.cand_cache = cache;
            return None;
        }
        let targets = self
            .policy
            .choose(writer, repl as usize, &[], &cache.cands, &mut self.rng);
        self.cand_cache = cache;
        if targets.is_empty() {
            return None;
        }
        let id = BlockId(self.blocks.len() as u64);
        self.blocks.push(BlockMeta {
            file,
            size,
            replicas: BTreeSet::new(),
            expected: repl,
        });
        self.files[file.0 as usize].blocks.push(id);
        Some((id, targets))
    }

    /// The pipeline finished: record which targets actually hold the block.
    /// Fewer than `expected` enqueues re-replication.
    pub fn commit_block(&mut self, block: BlockId, written: &[NodeId]) {
        let size = self.blocks[block.0 as usize].size;
        for &n in written {
            if let Some(dn) = self.datanodes.get_mut(&n) {
                if dn.liveness != DnLiveness::Dead {
                    dn.add_block(block, size);
                    self.blocks[block.0 as usize].replicas.insert(n);
                    self.bytes_written.add(size);
                }
            }
        }
        // The only datanode state touched above is `used` on `written`,
        // and only upward — no node can become newly eligible. So instead
        // of bumping the epoch (which would invalidate the candidate cache
        // between every allocate/commit pair of an upload, i.e. exactly
        // where it matters), patch the cached entries in place: the result
        // is byte-identical to a fresh scan. The cache stays node-sorted
        // because BTreeMap iteration built it ascending and removals keep
        // relative order.
        if self.cand_cache.epoch == self.dn_epoch {
            for &n in written {
                let Ok(i) = self
                    .cand_cache
                    .cands
                    .binary_search_by_key(&n, |c| c.node)
                else {
                    continue;
                };
                match self.datanodes.get(&n) {
                    Some(dn) if dn.can_accept(self.cand_cache.size) => {
                        self.cand_cache.cands[i].free = dn.free();
                    }
                    _ => {
                        self.cand_cache.cands.remove(i);
                    }
                }
            }
        }
        let meta = &self.blocks[block.0 as usize];
        if meta.is_missing() {
            self.blocks_lost.incr();
        }
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Hdfs, "block_commit")
                .with("block", block.0)
                .with("replicas", meta.replicas.len())
                .with("deficit", meta.deficit())
        });
        if meta.deficit() > 0 {
            let count = meta.replicas.len();
            self.needs_repl.insert(block, count);
        }
    }

    /// Mark the file complete (write-once-read-many).
    pub fn complete_file(&mut self, file: FileId) {
        self.files[file.0 as usize].complete = true;
    }

    /// Abandon an allocated block whose write failed: drop it from its
    /// file, free any partial replicas, and stop tracking it for
    /// replication. The file simply ends up shorter.
    pub fn abandon_block(&mut self, block: BlockId) {
        self.dn_changed();
        let meta = &mut self.blocks[block.0 as usize];
        let size = meta.size;
        meta.expected = 0;
        let replicas = std::mem::take(&mut meta.replicas);
        let file = meta.file;
        for n in replicas {
            if let Some(dn) = self.datanodes.get_mut(&n) {
                dn.remove_block(block, size);
            }
        }
        self.needs_repl.remove(block);
        self.pending_repl.remove(&block);
        self.files[file.0 as usize].blocks.retain(|&b| b != block);
    }

    /// Delete a file: every replica of every block is dropped immediately.
    pub fn delete_file(&mut self, path: &str) {
        self.dn_changed();
        let Some(id) = self.files_by_path.remove(path) else {
            return;
        };
        let blocks = std::mem::take(&mut self.files[id.0 as usize].blocks);
        for b in blocks {
            let size = self.blocks[b.0 as usize].size;
            let replicas = std::mem::take(&mut self.blocks[b.0 as usize].replicas);
            for n in replicas {
                if let Some(dn) = self.datanodes.get_mut(&n) {
                    dn.remove_block(b, size);
                }
            }
            self.needs_repl.remove(b);
            self.pending_repl.remove(&b);
            // Expected 0 so the block never re-enters the repl queue.
            self.blocks[b.0 as usize].expected = 0;
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Choose the replica a reader should fetch `block` from: the reader's
    /// own datanode, else a same-site replica, else any replica (random).
    /// Returns `None` for a missing block.
    pub fn pick_read_source(
        &mut self,
        block: BlockId,
        reader: NodeId,
        topo: &Topology,
    ) -> Option<NodeId> {
        // Heat signal for the availability policy: count every read
        // *request* (retries after bad replicas included — a block that
        // keeps readers waiting is exactly the one that wants copies).
        if self.cfg.availability.is_some() {
            let idx = block.0 as usize;
            if self.reads.len() <= idx {
                self.reads.resize(idx + 1, 0);
            }
            self.reads[idx] = self.reads[idx].saturating_add(1);
            self.total_reads.incr();
        }
        let meta = &self.blocks[block.0 as usize];
        // Only consider replicas on nodes the namenode believes usable.
        let usable: Vec<NodeId> = meta
            .replicas
            .iter()
            .copied()
            .filter(|n| self.is_live(*n))
            .collect();
        if usable.is_empty() {
            return None;
        }
        if usable.contains(&reader) {
            return Some(reader);
        }
        let reader_site = topo.site_of(reader);
        let same_site: Vec<NodeId> = usable
            .iter()
            .copied()
            .filter(|&n| topo.site_of(n) == reader_site)
            .collect();
        if !same_site.is_empty() {
            return Some(*self.rng.choose(&same_site));
        }
        Some(*self.rng.choose(&usable))
    }

    /// A reader found the replica unusable (zombie node, checksum error):
    /// invalidate it and queue re-replication.
    pub fn report_bad_replica(&mut self, block: BlockId, node: NodeId) {
        self.dn_changed();
        self.bad_replica_reports.incr();
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Hdfs, "bad_replica")
                .with("block", block.0)
                .with("node", node.0)
        });
        let size = self.blocks[block.0 as usize].size;
        if self.blocks[block.0 as usize].replicas.remove(&node) {
            if let Some(dn) = self.datanodes.get_mut(&node) {
                dn.remove_block(block, size);
            }
            let meta = &self.blocks[block.0 as usize];
            if meta.is_missing() {
                self.blocks_lost.incr();
            }
            if meta.deficit() > 0 {
                let count = meta.replicas.len();
                self.needs_repl.insert(block, count);
            }
        }
    }

    // ------------------------------------------------------------------
    // Replication monitor
    // ------------------------------------------------------------------

    /// Eligible targets for `size` more bytes, excluding `exclude`.
    fn candidates(&self, size: u64, exclude: &BTreeSet<NodeId>, topo: &Topology) -> Vec<Candidate> {
        self.datanodes
            .iter()
            .filter(|(n, dn)| dn.can_accept(size) && !exclude.contains(n))
            .map(|(&n, dn)| Candidate {
                node: n,
                site: topo.site_of(n),
                free: dn.free(),
            })
            .collect()
    }

    /// Issue replication orders for under-replicated blocks, most-critical
    /// (fewest live replicas) first, bounded by per-node stream limits and
    /// the per-tick order budget. With `cfg.repl_fairness` the walk
    /// resumes where a budget-exhausted tick stopped instead of always
    /// restarting at bucket 0, so a standing trickle of critical blocks
    /// cannot starve higher buckets forever.
    fn dispatch_replication(&mut self, topo: &Topology) -> Vec<ReplOrder> {
        if self.needs_repl.is_empty() {
            self.fair_resume = None;
            return Vec::new();
        }
        // Priority: fewest replicas first (Hadoop's priority queues).
        // The buckets already hold that order — no per-tick sort.
        let queue: Vec<BlockId> = if self.cfg.repl_fairness {
            self.needs_repl.iter_rotated(self.fair_resume)
        } else {
            self.needs_repl.iter().collect()
        };
        let avail = self.cfg.availability;
        let mut orders = Vec::new();
        // First block the order budget refused to serve; next tick's
        // fair walk resumes there.
        let mut unserved: Option<BlockId> = None;
        for b in queue {
            if orders.len() >= self.cfg.max_repl_orders_per_tick {
                unserved = Some(b);
                break;
            }
            let meta = &self.blocks[b.0 as usize];
            let pending = self.pending_repl.get(&b).map_or(0, |v| v.len());
            let deficit = meta.deficit().saturating_sub(pending);
            if deficit == 0 {
                if pending == 0 {
                    // Fully satisfied meanwhile.
                    self.needs_repl.remove(b);
                }
                continue;
            }
            let size = meta.size;
            // A source: live replica holder with stream budget. Zombies
            // qualify — the namenode cannot tell (transfer will fail).
            // The stream check goes through `get` rather than indexing:
            // a replica map entry whose datanode record vanished (a
            // registration race) must be skipped, not panic the master.
            let srcs: Vec<NodeId> = meta
                .replicas
                .iter()
                .copied()
                .filter(|n| {
                    self.is_live(*n)
                        && self.datanodes.get(n).is_some_and(|d| {
                            d.repl_streams < self.cfg.max_repl_streams_per_node
                        })
                })
                .collect();
            if srcs.is_empty() {
                continue; // nothing usable yet; retry next tick
            }
            for _ in 0..deficit {
                // Budget exhaustion mid-block only breaks the copy loop;
                // the *outer* budget check marks the next block unserved,
                // so a partially-served block yields the fair cursor to
                // its successor instead of monopolising it.
                if orders.len() >= self.cfg.max_repl_orders_per_tick {
                    break;
                }
                let src = *self.rng.choose(&srcs);
                let src_has_stream = self
                    .datanodes
                    .get(&src)
                    .is_some_and(|d| d.repl_streams < self.cfg.max_repl_streams_per_node);
                if !src_has_stream {
                    break;
                }
                // Exclude existing replicas and in-flight targets.
                let mut exclude: BTreeSet<NodeId> =
                    self.blocks[b.0 as usize].replicas.iter().copied().collect();
                if let Some(p) = self.pending_repl.get(&b) {
                    exclude.extend(p.iter().copied());
                }
                let mut cands: Vec<Candidate> = self
                    .candidates(size, &exclude, topo)
                    .into_iter()
                    .filter(|c| {
                        self.datanodes.get(&c.node).is_some_and(|d| {
                            d.repl_streams < self.cfg.max_repl_streams_per_node
                        })
                    })
                    .collect();
                // Availability-boosted copies (target above the birth
                // target) exist to *survive*: prefer stable sites for
                // them, falling back to the full set when none qualify.
                if let (Some(p), Some(snap)) = (avail.as_ref(), self.avail_snapshot.as_ref()) {
                    let meta = &self.blocks[b.0 as usize];
                    let base = p.birth_target(self.files[meta.file.0 as usize].replication);
                    if meta.expected > base {
                        cands = crate::placement::stable_first(cands, |s| {
                            snap.classify(s, p) == SiteBand::Stable
                        });
                    }
                }
                let existing: Vec<(NodeId, hog_net::SiteId)> = self.blocks[b.0 as usize]
                    .replicas
                    .iter()
                    .map(|&n| (n, topo.site_of(n)))
                    .collect();
                let targets = self
                    .policy
                    .choose(None, 1, &existing, &cands, &mut self.rng);
                let Some(&dst) = targets.first() else { break };
                // Both ends were checked above, but re-fetch defensively:
                // a missing record between scan and order skips the order
                // instead of bringing the namenode down.
                let Some(src_dn) = self.datanodes.get_mut(&src) else {
                    break;
                };
                src_dn.repl_streams += 1;
                let Some(dst_dn) = self.datanodes.get_mut(&dst) else {
                    if let Some(s) = self.datanodes.get_mut(&src) {
                        s.repl_streams = s.repl_streams.saturating_sub(1);
                    }
                    break;
                };
                dst_dn.repl_streams += 1;
                self.pending_repl.entry(b).or_default().push(dst);
                orders.push(ReplOrder {
                    block: b,
                    src,
                    dst,
                    bytes: size,
                });
            }
        }
        self.fair_resume = if self.cfg.repl_fairness {
            // Anchor the cursor at the first unserved block's *current*
            // bucket; if it got dequeued meanwhile the rotation simply
            // starts at the next position in (bucket, block) order.
            unserved.map(|b| (self.needs_repl.bucket_index(b).unwrap_or(0), b))
        } else {
            None
        };
        orders
    }

    /// A replication transfer finished (or failed / was killed).
    pub fn repl_done(&mut self, block: BlockId, src: NodeId, dst: NodeId, success: bool) {
        self.dn_changed();
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Hdfs, "repl_done")
                .with("block", block.0)
                .with("src", src.0)
                .with("dst", dst.0)
                .with("ok", success)
        });
        if let Some(dn) = self.datanodes.get_mut(&src) {
            dn.repl_streams = dn.repl_streams.saturating_sub(1);
        }
        if let Some(dn) = self.datanodes.get_mut(&dst) {
            dn.repl_streams = dn.repl_streams.saturating_sub(1);
        }
        if let Some(p) = self.pending_repl.get_mut(&block) {
            if let Some(pos) = p.iter().position(|&n| n == dst) {
                p.swap_remove(pos);
            }
            if p.is_empty() {
                self.pending_repl.remove(&block);
            }
        }
        if success {
            self.repl_completed.incr();
            if self.blocks[block.0 as usize].expected == 0 {
                // The block was deleted (or abandoned) while the transfer
                // was in flight: the destination discards the copy rather
                // than resurrecting a replica of a dead block — the old
                // path leaked that replica's bytes forever.
                return;
            }
            let size = self.blocks[block.0 as usize].size;
            if let Some(dn) = self.datanodes.get_mut(&dst) {
                if dn.liveness != DnLiveness::Dead {
                    dn.add_block(block, size);
                    self.blocks[block.0 as usize].replicas.insert(dst);
                    self.bytes_written.add(size);
                    self.bytes_rereplicated.add(size);
                }
            }
            let meta = &self.blocks[block.0 as usize];
            if meta.deficit() == 0 {
                self.needs_repl.remove(block);
            } else {
                // Still deficient: re-key under the new replica count.
                let count = meta.replicas.len();
                self.needs_repl.insert(block, count);
            }
            // A target lowered while this transfer was in flight can
            // leave the block over target now; queue the excess trim.
            if self.cfg.availability.is_some() && meta.excess() > 0 {
                self.over_repl.insert(block);
            }
        } else {
            self.repl_failed.incr();
            // Stays (or re-enters) the queue if still deficient.
            let meta = &self.blocks[block.0 as usize];
            if meta.deficit() > 0 {
                let count = meta.replicas.len();
                self.needs_repl.insert(block, count);
            }
        }
    }

    // ------------------------------------------------------------------
    // Availability policy (per-block targets)
    // ------------------------------------------------------------------

    /// Re-derive a block's queue memberships from its current replica
    /// count vs target: under target → under-replication queue, over
    /// target → trim queue, deleted → neither.
    fn refresh_block_queues(&mut self, block: BlockId) {
        let meta = &self.blocks[block.0 as usize];
        if meta.expected == 0 {
            self.needs_repl.remove(block);
            self.over_repl.remove(&block);
            return;
        }
        if meta.deficit() > 0 {
            let count = meta.replicas.len();
            self.needs_repl.insert(block, count);
        } else {
            self.needs_repl.remove(block);
        }
        if meta.excess() > 0 {
            self.over_repl.insert(block);
        } else {
            self.over_repl.remove(&block);
        }
    }

    /// Retarget a single block's replication (the availability policy's
    /// per-block knob; also the handle the target-transition proptests
    /// drive). Raising queues repair; lowering queues excess-replica
    /// trims for the next monitor tick. No-op on deleted blocks.
    pub fn set_block_replication(&mut self, block: BlockId, r: u16) {
        let r = r.max(1);
        let meta = &mut self.blocks[block.0 as usize];
        if meta.expected == 0 || meta.expected == r {
            return;
        }
        if r > meta.expected {
            self.targets_raised.incr();
        } else {
            self.targets_lowered.incr();
        }
        meta.expected = r;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Hdfs, "block_retarget")
                .with("block", block.0)
                .with("target", r as u64)
        });
        self.refresh_block_queues(block);
    }

    /// One availability sweep: recompute every live block's target from
    /// the policy's signals (host-site risk bands from `snapshot`, the
    /// block's read heat) through the hysteresis band, and remember the
    /// snapshot so replica placement and trims can classify sites until
    /// the next sweep. Returns `(targets raised, targets lowered)` this
    /// sweep. No-op unless the policy is armed.
    pub fn apply_availability(
        &mut self,
        snapshot: AvailabilitySnapshot,
        topo: &Topology,
    ) -> (u64, u64) {
        let Some(policy) = self.cfg.availability else {
            return (0, 0);
        };
        let before = (self.targets_raised.get(), self.targets_lowered.get());
        let mut retargets: Vec<(BlockId, u16)> = Vec::new();
        for (i, meta) in self.blocks.iter().enumerate() {
            if meta.expected == 0 {
                continue;
            }
            let base = policy.birth_target(self.files[meta.file.0 as usize].replication);
            let hosts = meta.replicas.len();
            let mut risky = 0usize;
            let mut stable = 0usize;
            for &n in &meta.replicas {
                match snapshot.classify(topo.site_of(n), &policy) {
                    SiteBand::Risky => risky += 1,
                    SiteBand::Stable => stable += 1,
                    SiteBand::Neutral => {}
                }
            }
            let reads = self.reads.get(i).copied().unwrap_or(0);
            let raw = policy.raw_target(base, reads, risky, stable, hosts);
            let new = policy.apply(meta.expected, raw);
            if new != meta.expected {
                retargets.push((BlockId(i as u64), new));
            }
        }
        for (b, r) in retargets {
            self.set_block_replication(b, r);
        }
        self.avail_snapshot = Some(snapshot);
        (
            self.targets_raised.get() - before.0,
            self.targets_lowered.get() - before.1,
        )
    }

    /// Drop one excess replica of `block` at `node` (availability trims
    /// and the balancer's shed pass). Instant metadata operation — the
    /// datanode just deletes the copy; no transfer.
    pub fn trim_replica(&mut self, block: BlockId, node: NodeId) {
        let size = self.blocks[block.0 as usize].size;
        if !self.blocks[block.0 as usize].replicas.remove(&node) {
            return;
        }
        self.dn_changed(); // frees space → candidate cache is stale
        if let Some(dn) = self.datanodes.get_mut(&node) {
            dn.remove_block(block, size);
        }
        self.replicas_trimmed.incr();
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Hdfs, "replica_trim")
                .with("block", block.0)
                .with("node", node.0)
        });
        self.refresh_block_queues(block);
    }

    /// Serve the excess-replica trim queue, dropping replicas from the
    /// riskiest sites first (stable copies are the ones a lowered target
    /// is betting on), bounded by the same per-tick budget as repairs.
    fn dispatch_trims(&mut self, topo: &Topology) {
        if self.over_repl.is_empty() {
            return;
        }
        let policy = self.cfg.availability;
        let blocks: Vec<BlockId> = self.over_repl.iter().copied().collect();
        let mut trimmed = 0usize;
        for b in blocks {
            if trimmed >= self.cfg.max_repl_orders_per_tick {
                break;
            }
            let meta = &self.blocks[b.0 as usize];
            let excess = meta.excess();
            if meta.expected == 0 || excess == 0 {
                self.over_repl.remove(&b);
                continue;
            }
            // Victim order: risky sites first, stable last,
            // NodeId-ascending within a band — deterministic, and keeps
            // the copies most likely to survive.
            let mut holders: Vec<(u8, NodeId)> = meta
                .replicas
                .iter()
                .map(|&n| {
                    let band = match (policy.as_ref(), self.avail_snapshot.as_ref()) {
                        (Some(p), Some(snap)) => match snap.classify(topo.site_of(n), p) {
                            SiteBand::Risky => 0u8,
                            SiteBand::Neutral => 1,
                            SiteBand::Stable => 2,
                        },
                        _ => 1,
                    };
                    (band, n)
                })
                .collect();
            holders.sort_unstable();
            let victims: Vec<NodeId> = holders.iter().take(excess).map(|&(_, n)| n).collect();
            for n in victims {
                self.trim_replica(b, n);
                trimmed += 1;
                if trimmed >= self.cfg.max_repl_orders_per_tick {
                    break;
                }
            }
        }
    }

    /// Availability-policy lifetime counters: `(targets raised, targets
    /// lowered, excess replicas trimmed)`. All zero when the policy is
    /// off. Outside the outcome fingerprint.
    pub fn availability_counters(&self) -> (u64, u64, u64) {
        (
            self.targets_raised.get(),
            self.targets_lowered.get(),
            self.replicas_trimmed.get(),
        )
    }

    /// Replica bytes ever written into HDFS: pipeline commits,
    /// re-replication completions and balancer copies.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.get()
    }

    /// The repair (re-replication) share of [`Namenode::bytes_written`].
    pub fn bytes_rereplicated(&self) -> u64 {
        self.bytes_rereplicated.get()
    }

    /// Reads served since birth (0 unless the availability policy is
    /// armed — the counter is only maintained for its heat signal).
    pub fn read_count(&self) -> u64 {
        self.total_reads.get()
    }

    /// Lifetime read count of one block (0 unless the policy is armed).
    pub fn block_reads(&self, block: BlockId) -> u32 {
        self.reads.get(block.0 as usize).copied().unwrap_or(0)
    }

    /// Count of blocks currently queued for excess-replica trims.
    pub fn over_replicated_count(&self) -> usize {
        self.over_repl.len()
    }

    /// Structural check of the replication queues for the proptests:
    /// the bucket index of every queued block must equal its live
    /// replica count, no queue entry may reference a deleted block, and
    /// the queue's internal index must be self-consistent.
    #[doc(hidden)]
    pub fn debug_queue_invariant(&self) -> Result<(), String> {
        self.needs_repl.check_invariant()?;
        for b in self.needs_repl.iter() {
            let meta = &self.blocks[b.0 as usize];
            if meta.expected == 0 {
                return Err(format!("deleted block {} still queued for repair", b.0));
            }
            let bucket = self.needs_repl.bucket_index(b).unwrap_or(NOT_QUEUED);
            if bucket as usize != meta.replicas.len() {
                return Err(format!(
                    "block {} queued in bucket {bucket} but has {} live replicas",
                    b.0,
                    meta.replicas.len()
                ));
            }
        }
        for &b in &self.over_repl {
            if self.blocks[b.0 as usize].expected == 0 {
                return Err(format!("deleted block {} still queued for trims", b.0));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries & metrics
    // ------------------------------------------------------------------

    /// Resolve a path.
    pub fn file_by_path(&self, path: &str) -> Option<FileId> {
        self.files_by_path.get(path).copied()
    }

    /// File metadata.
    pub fn file(&self, id: FileId) -> &FileMeta {
        &self.files[id.0 as usize]
    }

    /// Block metadata.
    pub fn block(&self, id: BlockId) -> &BlockMeta {
        &self.blocks[id.0 as usize]
    }

    /// Blocks of a file, in order.
    pub fn blocks_of(&self, file: FileId) -> &[BlockId] {
        &self.files[file.0 as usize].blocks
    }

    /// Count of blocks currently under-replicated.
    pub fn under_replicated_count(&self) -> usize {
        self.needs_repl.len()
    }

    /// Count of blocks with zero live replicas right now.
    pub fn missing_block_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.expected > 0 && b.is_missing())
            .count()
    }

    /// Lifetime counters: completed and failed replication transfers,
    /// block-loss events, bad-replica reports.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.repl_completed.get(),
            self.repl_failed.get(),
            self.blocks_lost.get(),
            self.bad_replica_reports.get(),
        )
    }

    /// Total bytes stored across live datanodes.
    pub fn total_used(&self) -> u64 {
        self.datanodes
            .values()
            .filter(|d| d.liveness != DnLiveness::Dead)
            .map(|d| d.used)
            .sum()
    }

    /// All datanodes and their records (for the balancer and reports).
    pub fn datanodes(&self) -> impl Iterator<Item = (NodeId, &DatanodeInfo)> {
        self.datanodes.iter().map(|(&n, d)| (n, d))
    }

    /// A silenced datanode resumed heartbeating (network partition healed
    /// before the dead-node timeout fired). Only `Silent` nodes revive;
    /// once declared `Dead` the node must re-register from scratch — its
    /// blocks were already dropped and queued for re-replication.
    pub fn mark_live(&mut self, now: SimTime, node: NodeId) {
        self.dn_changed();
        if let Some(dn) = self.datanodes.get_mut(&node) {
            if dn.liveness == DnLiveness::Silent {
                dn.liveness = DnLiveness::Live;
                dn.last_heartbeat = now;
                self.silent.remove(&node);
                self.tracer
                    .emit(|| TraceEvent::new(Layer::Hdfs, "dn_revived").with("node", node.0));
            }
        }
    }

    // ------------------------------------------------------------------
    // Master failover & recovery
    // ------------------------------------------------------------------

    /// A datanode (re-)introduces itself to a freshly promoted namenode
    /// and replays its block report: the node's replica set is rebuilt
    /// from the reported truth, discarding whatever the checkpoint
    /// believed this node held. Blocks the restored namespace does not
    /// know (allocated inside the lost edit window, or abandoned) are
    /// *orphans* — the datanode is told to discard them. Returns
    /// `(accepted, orphaned)` replica counts.
    ///
    /// Queue state is not touched here; the promoting mediator calls
    /// [`Namenode::rebuild_replication_state`] once after the last report.
    pub fn replay_block_report(
        &mut self,
        now: SimTime,
        node: NodeId,
        report: &[BlockId],
    ) -> (usize, usize) {
        self.dn_changed();
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Hdfs, "dn_block_report")
                .with("node", node.0)
                .with("blocks", report.len())
        });
        let cap = self.cfg.datanode_capacity;
        let dn = self
            .datanodes
            .entry(node)
            .or_insert_with(|| DatanodeInfo::new(cap, now));
        match dn.liveness {
            DnLiveness::Dead => self.dead_datanodes -= 1,
            DnLiveness::Silent => {
                self.silent.remove(&node);
            }
            DnLiveness::Live => {}
        }
        dn.liveness = DnLiveness::Live;
        dn.last_heartbeat = now;
        dn.storage_failed = false;
        dn.repl_streams = 0;
        let stale: Vec<BlockId> = dn.blocks.iter().copied().collect();
        dn.blocks.clear();
        dn.used = 0;
        for b in stale {
            self.blocks[b.0 as usize].replicas.remove(&node);
        }
        let mut accepted = 0;
        let mut orphaned = 0;
        // Re-borrow the record once for the whole report instead of an
        // unwrap per block: `datanodes` and `blocks` are disjoint
        // fields, so both can be borrowed through `self` concurrently.
        let dn = self
            .datanodes
            .get_mut(&node)
            .expect("replay_block_report: record was (re)inserted above");
        for &b in report {
            let known =
                (b.0 as usize) < self.blocks.len() && self.blocks[b.0 as usize].expected > 0;
            if known {
                let size = self.blocks[b.0 as usize].size;
                self.blocks[b.0 as usize].replicas.insert(node);
                dn.add_block(b, size);
                accepted += 1;
            } else {
                self.bad_replica_reports.incr();
                orphaned += 1;
            }
        }
        (accepted, orphaned)
    }

    /// Rebuild the replication monitor's queues from the block map after
    /// a failover: in-flight transfer bookkeeping inherited from the
    /// checkpoint is meaningless (those transfers belonged to the dead
    /// master), so pending targets and stream counts reset and the
    /// under-replication queue is rescanned from replica deficits.
    pub fn rebuild_replication_state(&mut self) {
        self.dn_changed();
        self.pending_repl.clear();
        for dn in self.datanodes.values_mut() {
            dn.repl_streams = 0;
        }
        self.needs_repl = ReplQueue::default();
        self.fair_resume = None;
        let deficient: Vec<(BlockId, usize)> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, m)| m.expected > 0 && m.deficit() > 0)
            .map(|(i, m)| (BlockId(i as u64), m.replicas.len()))
            .collect();
        for (b, count) in deficient {
            self.needs_repl.insert(b, count);
        }
        // The trim queue is soft state too: rescan it from excess
        // counts (replayed block reports can legitimately restore more
        // replicas than a lowered target wants).
        self.over_repl.clear();
        if self.cfg.availability.is_some() {
            for (i, m) in self.blocks.iter().enumerate() {
                if m.expected > 0 && m.excess() > 0 {
                    self.over_repl.insert(BlockId(i as u64));
                }
            }
        }
    }

    /// Deterministic serialization of the full namenode state (the
    /// checkpoint "fsimage"): namespace, block map, datanode records and
    /// replication queues, in fixed id order. Two namenodes with equal
    /// logical state produce byte-identical images, so the failover
    /// round-trip tests compare these strings directly.
    pub fn export_fsimage(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fsimage v1 files={} blocks={} datanodes={} repl={}",
            self.files.len(),
            self.blocks.len(),
            self.datanodes.len(),
            self.cfg.replication
        );
        for (i, f) in self.files.iter().enumerate() {
            let blocks: Vec<u64> = f.blocks.iter().map(|b| b.0).collect();
            let _ = writeln!(
                s,
                "file {i} path={} r={} complete={} blocks={blocks:?}",
                f.path, f.replication, f.complete
            );
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let replicas: Vec<u32> = b.replicas.iter().map(|n| n.0).collect();
            let _ = writeln!(
                s,
                "block {i} file={} size={} expected={} replicas={replicas:?}",
                b.file.0, b.size, b.expected
            );
        }
        for (n, dn) in &self.datanodes {
            let blocks: Vec<u64> = dn.blocks.iter().map(|b| b.0).collect();
            let _ = writeln!(
                s,
                "dn {} cap={} used={} hb={:?} live={:?} sf={} streams={} blocks={blocks:?}",
                n.0,
                dn.capacity,
                dn.used,
                dn.last_heartbeat,
                dn.liveness,
                dn.storage_failed,
                dn.repl_streams
            );
        }
        let queued: Vec<u64> = self.needs_repl.iter().map(|b| b.0).collect();
        let _ = writeln!(s, "needs_repl={queued:?}");
        let mut pending: Vec<(u64, Vec<u32>)> = self
            .pending_repl
            .iter()
            .map(|(b, v)| (b.0, v.iter().map(|n| n.0).collect()))
            .collect();
        pending.sort();
        let _ = writeln!(s, "pending_repl={pending:?}");
        let _ = writeln!(
            s,
            "counters={:?}",
            (
                self.repl_completed.get(),
                self.repl_failed.get(),
                self.blocks_lost.get(),
                self.bad_replica_reports.get()
            )
        );
        s
    }

    /// Fault injection (hog-chaos): corrupt a datanode's `used` accounting
    /// by `delta` bytes without touching its block set, so the next audit
    /// must flag the divergence. Test-only; never called by the simulation
    /// itself.
    #[doc(hidden)]
    pub fn debug_skew_used(&mut self, node: NodeId, delta: u64) {
        self.dn_changed();
        if let Some(dn) = self.datanodes.get_mut(&node) {
            dn.used += delta;
        }
    }
}

impl hog_sim_core::Auditable for Namenode {
    /// Cross-check the namenode's two views of the cluster: the per-block
    /// replica map and the per-datanode block/usage accounting must agree
    /// exactly, dead datanodes must hold nothing, and no datanode may
    /// claim more bytes than its capacity.
    fn audit(&self) -> Vec<hog_sim_core::Violation> {
        use hog_sim_core::Violation;
        let mut out = Vec::new();
        for (&n, dn) in &self.datanodes {
            let tallied: u64 = dn
                .blocks
                .iter()
                .map(|b| self.blocks[b.0 as usize].size)
                .sum();
            if tallied != dn.used {
                out.push(Violation::new(
                    "hdfs",
                    format!(
                        "datanode {} accounting skew: used={} but hosted blocks total {}",
                        n.0, dn.used, tallied
                    ),
                ));
            }
            if dn.used > dn.capacity {
                out.push(Violation::new(
                    "hdfs",
                    format!(
                        "datanode {} over capacity: used={} capacity={}",
                        n.0, dn.used, dn.capacity
                    ),
                ));
            }
            if dn.liveness == DnLiveness::Dead && (!dn.blocks.is_empty() || dn.used != 0) {
                out.push(Violation::new(
                    "hdfs",
                    format!(
                        "dead datanode {} still accounts {} block(s) / {} bytes",
                        n.0,
                        dn.blocks.len(),
                        dn.used
                    ),
                ));
            }
            for &b in &dn.blocks {
                if !self.blocks[b.0 as usize].replicas.contains(&n) {
                    out.push(Violation::new(
                        "hdfs",
                        format!(
                            "datanode {} hosts block {} missing from the block map",
                            n.0, b.0
                        ),
                    ));
                }
            }
        }
        for (i, meta) in self.blocks.iter().enumerate() {
            for &n in &meta.replicas {
                match self.datanodes.get(&n) {
                    None => out.push(Violation::new(
                        "hdfs",
                        format!("block {i} lists unknown datanode {}", n.0),
                    )),
                    Some(dn) if dn.liveness == DnLiveness::Dead => out.push(Violation::new(
                        "hdfs",
                        format!("block {i} lists dead datanode {} as replica", n.0),
                    )),
                    Some(dn) if !dn.blocks.contains(&BlockId(i as u64)) => {
                        out.push(Violation::new(
                            "hdfs",
                            format!("block {i} lists datanode {} which does not host it", n.0),
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
        // The silent suspect set and dead counter must mirror the
        // per-datanode liveness fields exactly.
        let silent_recount: BTreeSet<NodeId> = self
            .datanodes
            .iter()
            .filter(|(_, dn)| dn.liveness == DnLiveness::Silent)
            .map(|(&n, _)| n)
            .collect();
        if silent_recount != self.silent {
            out.push(Violation::new(
                "hdfs",
                format!(
                    "silent-datanode set drifted: cached {}, recounted {}",
                    self.silent.len(),
                    silent_recount.len()
                ),
            ));
        }
        let dead_recount = self
            .datanodes
            .values()
            .filter(|d| d.liveness == DnLiveness::Dead)
            .count();
        if dead_recount != self.dead_datanodes {
            out.push(Violation::new(
                "hdfs",
                format!(
                    "dead-datanode count drifted: cached {}, recounted {dead_recount}",
                    self.dead_datanodes
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::SiteAwarePolicy;

    /// 3 sites × `per_site` nodes, all registered as datanodes at t=0.
    fn setup(per_site: u32, cfg: HdfsConfig) -> (Namenode, Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let mut nodes = Vec::new();
        for s in 0..3 {
            let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
            for _ in 0..per_site {
                nodes.push(topo.add_node(site));
            }
        }
        let mut nn = Namenode::new(cfg, Box::new(SiteAwarePolicy), SimRng::seed_from_u64(11));
        for &n in &nodes {
            nn.register_datanode(SimTime::ZERO, n);
        }
        (nn, topo, nodes)
    }

    fn write_file(
        nn: &mut Namenode,
        topo: &Topology,
        path: &str,
        blocks: usize,
        block_size: u64,
    ) -> FileId {
        let f = nn.create_file_default(path);
        for _ in 0..blocks {
            let (b, targets) = nn.allocate_block(f, block_size, None, topo).unwrap();
            nn.commit_block(b, &targets);
        }
        nn.complete_file(f);
        f
    }

    #[test]
    fn write_and_read_round_trip() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, nodes) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 5, 64 << 20);
        assert_eq!(nn.blocks_of(f).len(), 5);
        let blocks: Vec<BlockId> = nn.blocks_of(f).to_vec();
        for b in blocks {
            assert_eq!(nn.block(b).replicas.len(), 3);
            let src = nn.pick_read_source(b, nodes[0], &topo).unwrap();
            assert!(nn.block(b).replicas.contains(&src));
        }
        assert_eq!(nn.under_replicated_count(), 0);
    }

    #[test]
    fn read_prefers_local_then_site() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, nodes) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 1, 1024);
        let b = nn.blocks_of(f)[0];
        let holder = *nn.block(b).replicas.iter().next().unwrap();
        // Local read.
        assert_eq!(nn.pick_read_source(b, holder, &topo), Some(holder));
        // Same-site read when the reader isn't a holder.
        let reader = nodes
            .iter()
            .copied()
            .find(|&n| !nn.block(b).replicas.contains(&n))
            .unwrap();
        let reader_site = topo.site_of(reader);
        let src = nn.pick_read_source(b, reader, &topo).unwrap();
        let has_same_site = nn
            .block(b)
            .replicas
            .iter()
            .any(|&r| topo.site_of(r) == reader_site);
        if has_same_site {
            assert_eq!(topo.site_of(src), reader_site);
        }
    }

    #[test]
    fn silent_nodes_die_after_timeout_and_rereplication_kicks_in() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, nodes) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 4, 64 << 20);
        let victim = *nn.block(nn.blocks_of(f)[0]).replicas.iter().next().unwrap();
        nn.mark_silent(SimTime::from_secs(100), victim);
        // Before the timeout nothing happens.
        let out = nn.tick(SimTime::from_secs(110), &topo);
        assert!(out.newly_dead.is_empty());
        assert_eq!(nn.reported_live(), nodes.len());
        // After 30 s it is declared dead and repl orders flow.
        let out = nn.tick(SimTime::from_secs(131), &topo);
        assert_eq!(out.newly_dead, vec![victim]);
        assert_eq!(nn.reported_live(), nodes.len() - 1);
        assert!(!out.orders.is_empty(), "under-replicated blocks need work");
        for o in &out.orders {
            assert_ne!(o.src, victim);
            assert_ne!(o.dst, victim);
            assert!(nn.block(o.block).replicas.contains(&o.src));
        }
        // Completing the orders restores full replication.
        let orders = out.orders.clone();
        for o in orders {
            nn.repl_done(o.block, o.src, o.dst, true);
        }
        // May need more ticks if stream limits staggered the work.
        for i in 0..20 {
            let out = nn.tick(SimTime::from_secs(140 + i), &topo);
            for o in out.orders {
                nn.repl_done(o.block, o.src, o.dst, true);
            }
        }
        assert_eq!(nn.under_replicated_count(), 0);
        assert_eq!(nn.missing_block_count(), 0);
    }

    #[test]
    fn stock_timeout_is_slow() {
        let cfg = HdfsConfig::stock();
        let (mut nn, topo, _) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 1, 1024);
        let victim = *nn.block(nn.blocks_of(f)[0]).replicas.iter().next().unwrap();
        nn.mark_silent(SimTime::from_secs(0), victim);
        let out = nn.tick(SimTime::from_secs(600), &topo);
        assert!(out.newly_dead.is_empty(), "stock waits ~10.5 min");
        let out = nn.tick(SimTime::from_secs(631), &topo);
        assert_eq!(out.newly_dead, vec![victim]);
    }

    #[test]
    fn losing_all_replicas_counts_missing_blocks() {
        let cfg = HdfsConfig::hog().with_replication(2);
        let (mut nn, topo, _) = setup(1, cfg); // 3 nodes total
        let f = write_file(&mut nn, &topo, "/in/a", 2, 1024);
        let holders: Vec<NodeId> = nn
            .block(nn.blocks_of(f)[0])
            .replicas
            .iter()
            .copied()
            .collect();
        for h in &holders {
            nn.mark_silent(SimTime::ZERO, *h);
        }
        nn.tick(SimTime::from_secs(31), &topo);
        assert!(nn.missing_block_count() >= 1);
        let (_, _, lost, _) = nn.counters();
        assert!(lost >= 1);
    }

    #[test]
    fn zombie_keeps_reporting_but_reads_fail_and_heal() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, nodes) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 1, 1024);
        let b = nn.blocks_of(f)[0];
        let zombie = *nn.block(b).replicas.iter().next().unwrap();
        nn.mark_storage_failed(zombie);
        // Zombie still looks alive.
        nn.tick(SimTime::from_secs(120), &topo);
        assert!(nn.is_live(zombie));
        assert!(nn.storage_failed(zombie));
        // A reader hits it, fails, reports: the replica is invalidated.
        nn.report_bad_replica(b, zombie);
        assert!(!nn.block(b).replicas.contains(&zombie));
        assert_eq!(nn.under_replicated_count(), 1);
        // Re-replication restores 3 replicas elsewhere.
        for i in 0..10 {
            let out = nn.tick(SimTime::from_secs(130 + i), &topo);
            for o in out.orders {
                nn.repl_done(o.block, o.src, o.dst, true);
            }
        }
        assert_eq!(nn.block(b).replicas.len(), 3);
        let _ = nodes;
    }

    #[test]
    fn partial_pipeline_commit_queues_repair() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, _) = setup(4, cfg);
        let f = nn.create_file_default("/in/a");
        let (b, targets) = nn.allocate_block(f, 1024, None, &topo).unwrap();
        assert_eq!(targets.len(), 3);
        nn.commit_block(b, &targets[..2]); // one pipeline member failed
        assert_eq!(nn.under_replicated_count(), 1);
        let out = nn.tick(SimTime::from_secs(1), &topo);
        assert_eq!(out.orders.len(), 1);
    }

    #[test]
    fn delete_file_frees_space_and_cancels_repair() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, _) = setup(4, cfg);
        write_file(&mut nn, &topo, "/in/a", 3, 1 << 20);
        assert!(nn.total_used() > 0);
        nn.delete_file("/in/a");
        assert_eq!(nn.total_used(), 0);
        assert_eq!(nn.under_replicated_count(), 0);
        assert!(nn.file_by_path("/in/a").is_none());
    }

    #[test]
    fn allocation_fails_gracefully_when_full() {
        let cfg = HdfsConfig::hog().with_replication(3).with_capacity(1000);
        let (mut nn, topo, _) = setup(1, cfg);
        let f = nn.create_file_default("/big");
        // First block fits.
        let (b, t) = nn.allocate_block(f, 900, None, &topo).unwrap();
        nn.commit_block(b, &t);
        // Second cannot (nodes have ≤100 free).
        assert!(nn.allocate_block(f, 900, None, &topo).is_none());
    }

    #[test]
    fn stream_limits_bound_concurrent_replication() {
        let mut cfg = HdfsConfig::hog().with_replication(3);
        cfg.max_repl_streams_per_node = 1;
        cfg.max_repl_orders_per_tick = 1000;
        let (mut nn, topo, _) = setup(6, cfg);
        write_file(&mut nn, &topo, "/in/a", 12, 1 << 20);
        // Kill one replica holder of many blocks.
        let victim = nn
            .datanodes()
            .max_by_key(|(_, d)| d.blocks.len())
            .map(|(n, _)| n)
            .unwrap();
        nn.mark_silent(SimTime::ZERO, victim);
        let out = nn.tick(SimTime::from_secs(31), &topo);
        // With stream limit 1 per node, each node sources or sinks ≤ 1.
        let mut uses: HashMap<NodeId, usize> = HashMap::new();
        for o in &out.orders {
            *uses.entry(o.src).or_default() += 1;
            *uses.entry(o.dst).or_default() += 1;
        }
        assert!(uses.values().all(|&c| c <= 1), "stream limit violated");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let cfg = HdfsConfig::hog().with_replication(5);
            let (mut nn, topo, _) = setup(4, cfg);
            let f = write_file(&mut nn, &topo, "/in/a", 6, 1 << 20);
            nn.blocks_of(f)
                .iter()
                .map(|&b| format!("{:?}", nn.block(b).replicas))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn repl_queue_boundary_counts_file_into_correct_buckets() {
        // Regression: the old `u16` sentinel clamped counts at 65534,
        // misfiling 65535+ into bucket 65534 (wrong priority order).
        let mut q = ReplQueue::default();
        q.insert(BlockId(1), 65_534);
        q.insert(BlockId(2), 65_535);
        q.insert(BlockId(3), 70_000);
        q.insert(BlockId(4), 3);
        assert_eq!(q.bucket_index(BlockId(2)), Some(65_535));
        assert_eq!(q.bucket_index(BlockId(3)), Some(70_000));
        let order: Vec<u64> = q.iter().map(|b| b.0).collect();
        assert_eq!(order, vec![4, 1, 2, 3], "priority must follow true counts");
        q.remove(BlockId(3));
        assert_eq!(q.len(), 3);
        assert!(q.check_invariant().is_ok());
    }

    #[test]
    fn fair_dispatch_prevents_low_bucket_starvation() {
        // Two deficient blocks, an order budget of 1, and transfers
        // that keep failing: legacy dispatch restarts at bucket 0 every
        // tick and serves the 1-replica block forever; fair dispatch
        // rotates so the 2-replica block gets its turn.
        let serve = |fair: bool| -> Vec<u64> {
            let mut cfg = HdfsConfig::hog().with_replication(3);
            cfg.max_repl_orders_per_tick = 1;
            if fair {
                cfg = cfg.with_repl_fairness();
            }
            let (mut nn, topo, _) = setup(4, cfg);
            let fa = nn.create_file_default("/a");
            let (ba, ta) = nn.allocate_block(fa, 1024, None, &topo).unwrap();
            nn.commit_block(ba, &ta[..1]); // bucket 1
            let fb = nn.create_file_default("/b");
            let (bb, tb) = nn.allocate_block(fb, 1024, None, &topo).unwrap();
            nn.commit_block(bb, &tb[..2]); // bucket 2
            let mut served = Vec::new();
            for i in 0..6 {
                let out = nn.tick(SimTime::from_secs(1 + i), &topo);
                for o in out.orders {
                    served.push(o.block.0);
                    nn.repl_done(o.block, o.src, o.dst, false);
                }
            }
            served
        };
        let legacy = serve(false);
        assert!(
            legacy.iter().all(|&b| b == legacy[0]),
            "legacy order drains the lowest bucket only: {legacy:?}"
        );
        let fair = serve(true);
        let unique: BTreeSet<u64> = fair.iter().copied().collect();
        assert_eq!(unique.len(), 2, "fair dispatch serves both blocks: {fair:?}");
    }

    #[test]
    fn delete_mid_replication_scan_does_not_resurrect_replicas() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, _) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 3, 1 << 20);
        let victim = *nn.block(nn.blocks_of(f)[0]).replicas.iter().next().unwrap();
        nn.mark_silent(SimTime::ZERO, victim);
        let out = nn.tick(SimTime::from_secs(31), &topo);
        assert!(!out.orders.is_empty());
        // The file vanishes while the repair transfers are in flight.
        nn.delete_file("/in/a");
        assert_eq!(nn.total_used(), 0);
        for o in out.orders {
            nn.repl_done(o.block, o.src, o.dst, true);
        }
        // Late completions must not resurrect replicas of deleted
        // blocks (the old path leaked those bytes forever).
        assert_eq!(nn.total_used(), 0, "deleted block's bytes leaked back");
        assert_eq!(nn.under_replicated_count(), 0);
        assert!(hog_sim_core::Auditable::audit(&nn).is_empty());
        assert!(nn.debug_queue_invariant().is_ok());
    }

    #[test]
    fn armed_policy_births_blocks_at_birth_target() {
        use crate::availability::AvailabilityPolicy;
        let cfg = HdfsConfig::hog().with_availability(AvailabilityPolicy::trua_default());
        let (mut nn, topo, _) = setup(4, cfg); // file repl 10, birth 6
        let f = write_file(&mut nn, &topo, "/in/a", 1, 1 << 20);
        let b = nn.blocks_of(f)[0];
        assert_eq!(nn.block(b).expected, 6);
        assert_eq!(nn.block(b).replicas.len(), 6);
        assert_eq!(nn.under_replicated_count(), 0);
    }

    #[test]
    fn lowering_block_target_trims_excess() {
        use crate::availability::AvailabilityPolicy;
        let cfg = HdfsConfig::hog()
            .with_replication(6)
            .with_availability(AvailabilityPolicy::trua_default());
        let (mut nn, topo, _) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 2, 1 << 20);
        let b = nn.blocks_of(f)[0];
        assert_eq!(nn.block(b).replicas.len(), 6);
        nn.set_block_replication(b, 4);
        assert_eq!(nn.over_replicated_count(), 1);
        nn.tick(SimTime::from_secs(1), &topo);
        assert_eq!(nn.block(b).replicas.len(), 4);
        assert_eq!(nn.over_replicated_count(), 0);
        let (_, lowered, trimmed) = nn.availability_counters();
        assert_eq!((lowered, trimmed), (1, 2));
        assert!(nn.debug_queue_invariant().is_ok());
    }

    #[test]
    fn availability_sweep_raises_hot_and_lowers_cold_stable() {
        use crate::availability::{AvailabilityPolicy, AvailabilitySnapshot, SiteRisk};
        let cfg = HdfsConfig::hog().with_availability(AvailabilityPolicy::trua_default());
        let (mut nn, topo, nodes) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 2, 1 << 20);
        let (hot, cold) = (nn.blocks_of(f)[0], nn.blocks_of(f)[1]);
        for _ in 0..3 {
            nn.pick_read_source(hot, nodes[0], &topo);
        }
        assert_eq!(nn.block_reads(hot), 3);
        // Every site stable: the hot block buys copies, the cold sheds.
        let stable = AvailabilitySnapshot {
            sites: vec![
                SiteRisk {
                    penalty: 0.0,
                    lifetime_secs: 7200.0
                };
                3
            ],
        };
        let (raised, lowered) = nn.apply_availability(stable, &topo);
        assert_eq!((raised, lowered), (1, 1));
        assert_eq!(nn.block(hot).expected, 8); // birth 6 + hot boost 2
        assert_eq!(nn.block(cold).expected, 4); // birth 6 - stable drop 2
        // Every site risky: both blocks buy protection.
        let risky = AvailabilitySnapshot {
            sites: vec![
                SiteRisk {
                    penalty: 5.0,
                    lifetime_secs: 600.0
                };
                3
            ],
        };
        let (raised, _) = nn.apply_availability(risky, &topo);
        assert_eq!(raised, 2);
        assert_eq!(nn.block(hot).expected, 10); // 6 + hot 2 + risky 2
        assert_eq!(nn.block(cold).expected, 8); // 6 + risky 2
        assert!(nn.debug_queue_invariant().is_ok());
    }

    #[test]
    fn reads_not_counted_without_policy() {
        let cfg = HdfsConfig::hog().with_replication(3);
        let (mut nn, topo, nodes) = setup(4, cfg);
        let f = write_file(&mut nn, &topo, "/in/a", 1, 1024);
        let b = nn.blocks_of(f)[0];
        nn.pick_read_source(b, nodes[0], &topo);
        assert_eq!(nn.read_count(), 0);
        assert_eq!(nn.block_reads(b), 0);
    }

    mod target_transition_props {
        use super::*;
        use crate::availability::AvailabilityPolicy;
        use proptest::prelude::*;

        proptest! {
            /// Raising/lowering per-block targets mid-run — interleaved
            /// with failures, repairs and monitor ticks — must keep the
            /// queue invariant (bucket index == live replica count, no
            /// orphaned entries), and lowered targets must eventually
            /// trim all excess replicas.
            #[test]
            fn prop_target_transitions_keep_queue_invariant(
                ops in proptest::collection::vec((0u8..4, 0u64..8, 1u16..14), 1..50),
            ) {
                let cfg = HdfsConfig::hog()
                    .with_replication(3)
                    .with_availability(AvailabilityPolicy::trua_default());
                let (mut nn, topo, _) = setup(4, cfg);
                let f = write_file(&mut nn, &topo, "/in/a", 6, 1 << 20);
                let blocks: Vec<BlockId> = nn.blocks_of(f).to_vec();
                let mut t = 0u64;
                for (op, bi, r) in ops {
                    let b = blocks[(bi as usize) % blocks.len()];
                    match op {
                        0 => nn.set_block_replication(b, r),
                        1 => {
                            if let Some(&n) = nn.block(b).replicas.iter().next() {
                                nn.report_bad_replica(b, n);
                            }
                        }
                        2 => {
                            t += 1;
                            let out = nn.tick(SimTime::from_secs(t), &topo);
                            for o in out.orders {
                                // Mix successes and failures deterministically.
                                let ok = !(o.block.0 + o.dst.0 as u64 + t).is_multiple_of(3);
                                nn.repl_done(o.block, o.src, o.dst, ok);
                            }
                        }
                        _ => {
                            t += 1;
                            nn.tick(SimTime::from_secs(t), &topo);
                        }
                    }
                    if let Err(e) = nn.debug_queue_invariant() {
                        prop_assert!(false, "queue invariant broken: {e}");
                    }
                }
                // Lowering every target must eventually clear all excess.
                for &b in &blocks {
                    nn.set_block_replication(b, 1);
                }
                for _ in 0..25 {
                    t += 1;
                    let out = nn.tick(SimTime::from_secs(t), &topo);
                    for o in out.orders {
                        nn.repl_done(o.block, o.src, o.dst, true);
                    }
                }
                prop_assert_eq!(nn.over_replicated_count(), 0);
                for &b in &blocks {
                    prop_assert_eq!(nn.block(b).excess(), 0);
                }
                if let Err(e) = nn.debug_queue_invariant() {
                    prop_assert!(false, "queue invariant broken after drain: {e}");
                }
            }
        }
    }
}
