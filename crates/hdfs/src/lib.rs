//! Hadoop Distributed File System (0.20-era) model.
//!
//! This crate models the pieces of HDFS whose behaviour the HOG paper
//! depends on:
//!
//! * a **Namenode** ([`namenode::Namenode`]) holding the namespace, the
//!   block→replica map, datanode liveness (heartbeat timeout — HOG lowers
//!   it from ~10 minutes to 30 s), and the replication monitor that
//!   re-replicates under-replicated blocks after node loss;
//! * **datanode** accounting ([`datanode::DatanodeInfo`]): disk capacity,
//!   hosted blocks, and the *zombie* failure mode from §IV-D.1 (daemon
//!   alive and heartbeating, but its working directory was deleted by the
//!   site's preemption — every read/write fails), plus the paper's fix
//!   (periodic working-directory self-check → clean shutdown);
//! * pluggable **block placement** ([`placement`]): HOG's site-aware
//!   policy, stock rack-aware placement, and a rack-oblivious policy used
//!   as the ablation baseline;
//! * the **balancer** ([`balancer`]) the paper uses when growing the pool.
//!
//! Timing (how long a replication transfer takes, when heartbeats arrive)
//! lives in the mediator (`hog-core`), which drives this crate's state
//! machines and moves bytes through `hog-net`. That split keeps every
//! decision here synchronous and unit-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod availability;
pub mod balancer;
pub mod config;
pub mod datanode;
pub mod namenode;
pub mod placement;
pub mod types;

pub use availability::{AvailabilityPolicy, AvailabilitySnapshot, SiteBand, SiteRisk};
pub use config::HdfsConfig;
pub use datanode::DatanodeInfo;
pub use namenode::{Namenode, NamenodeTickOutput, ReplOrder};
pub use placement::{
    stable_first, AnchorFirstPolicy, PlacementPolicy, RackAwarePolicy, RackObliviousPolicy,
    SiteAwarePolicy,
};
pub use types::{BlockId, BlockMeta, FileId, FileMeta};
