//! Trua-style per-block availability targets.
//!
//! HOG's answer to OSG preemption is a flat replication factor of 10
//! (§III-B): every block pays the worst-case premium whether or not its
//! hosts are at risk. Trua (see PAPERS.md) showed that per-task
//! availability targets beat a flat factor — the same idea applies per
//! block. The [`AvailabilityPolicy`] here sets each block's replication
//! target from three signals:
//!
//! 1. the decayed site-failure penalty of the block's current hosts
//!    (hog-sched's failure history, read through the JobTracker),
//! 2. the churn band of those hosts' sites (hog-grid's `ChurnModel`
//!    median-lifetime, scaled by the diurnal pressure multiplier),
//! 3. a per-block read counter (hot blocks buy extra copies for read
//!    bandwidth as much as for durability).
//!
//! Targets are clamped to `[r_min, r_max]` and lowered only through a
//! hysteresis band so a site drifting around a classification boundary
//! doesn't make targets flap (raise eagerly, lower reluctantly).
//!
//! All of the state driven by this policy is **soft**: read counters
//! and the excess-replica queue are rebuilt from the block map after a
//! failover and are deliberately excluded from the fsimage, while the
//! per-block target itself rides in [`crate::types::BlockMeta::expected`],
//! which was already persisted. With the policy disabled (the default)
//! every code path is bit-identical to the flat-replication namenode.

use hog_net::SiteId;
use hog_sim_core::SimDuration;

/// Per-block replication targeting policy. Disabled by default
/// (`HdfsConfig::availability == None`); arm it with
/// [`crate::HdfsConfig::with_availability`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvailabilityPolicy {
    /// Hard floor for any block's replication target.
    pub r_min: u16,
    /// Hard ceiling for any block's replication target.
    pub r_max: u16,
    /// Birth target for new blocks: written with
    /// `min(file replication, initial)` copies instead of the flat
    /// factor, then retargeted as signals accumulate. This is where
    /// most of the replica-GB saving comes from — trims only reclaim
    /// space, they can't un-write pipeline bytes.
    pub initial: u16,
    /// A block with at least this many reads counts as hot.
    pub hot_reads: u32,
    /// Extra copies for a hot block.
    pub hot_boost: u16,
    /// Extra copies when the majority of a block's hosts sit on risky
    /// sites (high failure penalty or short typical lifetime).
    pub risky_boost: u16,
    /// Copies shed when a block is cold and *every* host sits on a
    /// stable site.
    pub stable_drop: u16,
    /// A site whose pressure-adjusted typical glidein lifetime is at
    /// least this many seconds qualifies as stable (35 min — the
    /// paper's measured mean OSG lifetime — by default).
    pub stable_lifetime_secs: f64,
    /// A site whose pressure-adjusted typical lifetime is below this
    /// many seconds is risky regardless of its penalty.
    pub risky_lifetime_secs: f64,
    /// A site with a decayed failure penalty at or above this is risky
    /// regardless of its lifetime band.
    pub risky_penalty: f64,
    /// Stability additionally requires the decayed penalty to sit
    /// below this.
    pub stable_penalty: f64,
    /// Lower a target only when it exceeds the raw recomputed target
    /// by more than this many copies (raises apply immediately).
    pub hysteresis: u16,
    /// Minimum spacing between retarget sweeps on the master tick.
    pub interval: SimDuration,
}

impl AvailabilityPolicy {
    /// Defaults tuned for the paper's OSG deployment: birth at 6
    /// copies (flat-10 minus the premium paid for blocks that turn out
    /// to live on stable sites), floor 4, ceiling 12, and a one-copy
    /// hysteresis band.
    pub fn trua_default() -> Self {
        AvailabilityPolicy {
            r_min: 4,
            r_max: 12,
            initial: 6,
            hot_reads: 3,
            hot_boost: 2,
            risky_boost: 2,
            stable_drop: 2,
            stable_lifetime_secs: 35.0 * 60.0,
            risky_lifetime_secs: 20.0 * 60.0,
            risky_penalty: 2.0,
            stable_penalty: 0.75,
            hysteresis: 1,
            interval: SimDuration::from_secs(30),
        }
    }

    /// Replication a new block is born with: the file's requested
    /// factor capped at `initial`, then clamped into `[r_min, r_max]`.
    /// A file explicitly asking for *less* than `r_min` still gets
    /// `r_min` — the floor is the availability guarantee.
    pub fn birth_target(&self, file_replication: u16) -> u16 {
        file_replication
            .min(self.initial)
            .clamp(self.r_min, self.r_max)
    }

    /// Recompute a block's raw target from its signals, before
    /// hysteresis. `base` is the block's birth target, `reads` its
    /// lifetime read count, and the host counts classify where its
    /// replicas currently sit.
    pub fn raw_target(
        &self,
        base: u16,
        reads: u32,
        risky_hosts: usize,
        stable_hosts: usize,
        hosts: usize,
    ) -> u16 {
        let mut t = base as i32;
        if hosts > 0 && 2 * risky_hosts >= hosts {
            t += self.risky_boost as i32;
        }
        let hot = reads >= self.hot_reads;
        if hot {
            t += self.hot_boost as i32;
        } else if hosts > 0 && stable_hosts == hosts {
            t -= self.stable_drop as i32;
        }
        t.clamp(self.r_min as i32, self.r_max as i32) as u16
    }

    /// Apply hysteresis: raises take effect immediately, lowers only
    /// once the gap exceeds the hysteresis band (and then drop all the
    /// way to the raw target, so the band doesn't ratchet).
    pub fn apply(&self, current: u16, raw: u16) -> u16 {
        if raw > current || current - raw > self.hysteresis {
            raw
        } else {
            current
        }
    }

    /// How many replicas of a block must survive a planned shrink /
    /// decommission batch when this policy is armed: half the block's
    /// target (rounded up), never below one. The flat namenode only
    /// requires a single survivor; per-block targets would be
    /// meaningless if a shrink could cut an 8-target block to 1 copy
    /// in one batch.
    pub fn shrink_floor(&self, expected: u16) -> usize {
        ((expected as usize).div_ceil(2)).max(1)
    }
}

/// How a site is classified for availability decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteBand {
    /// High failure penalty or short typical lifetime: replicas here
    /// need backup.
    Risky,
    /// Neither risky nor provably stable (includes sites the snapshot
    /// doesn't cover, like the dedicated CENTRAL site's unknown peers).
    Neutral,
    /// Low penalty and long typical lifetime: safe to hold the only
    /// copies of a cold block.
    Stable,
}

/// One site's availability signals at snapshot time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SiteRisk {
    /// Decayed failure penalty from hog-sched (0.0 when the active
    /// scheduler keeps no failure history).
    pub penalty: f64,
    /// Typical glidein lifetime in seconds under the site's churn
    /// model, divided by the current diurnal pressure multiplier —
    /// shorter at reclaim peaks.
    pub lifetime_secs: f64,
}

/// Point-in-time availability signals for every site, indexed by
/// [`SiteId`]. Built by the cluster on the master tick and handed to
/// [`crate::Namenode::apply_availability`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AvailabilitySnapshot {
    /// Per-site risk, dense by `SiteId`. Sites beyond the vector
    /// (registered after the snapshot was built) classify as Neutral.
    pub sites: Vec<SiteRisk>,
}

impl AvailabilitySnapshot {
    /// Classify a site against the policy's bands. Unknown sites are
    /// Neutral: they neither trigger a risky boost nor allow a stable
    /// drop.
    pub fn classify(&self, site: SiteId, policy: &AvailabilityPolicy) -> SiteBand {
        let Some(risk) = self.sites.get(site.0 as usize) else {
            return SiteBand::Neutral;
        };
        if risk.penalty >= policy.risky_penalty || risk.lifetime_secs <= policy.risky_lifetime_secs
        {
            SiteBand::Risky
        } else if risk.penalty < policy.stable_penalty
            && risk.lifetime_secs >= policy.stable_lifetime_secs
        {
            SiteBand::Stable
        } else {
            SiteBand::Neutral
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AvailabilityPolicy {
        AvailabilityPolicy::trua_default()
    }

    #[test]
    fn birth_target_caps_and_clamps() {
        let p = policy();
        assert_eq!(p.birth_target(10), 6); // flat-10 file births at `initial`
        assert_eq!(p.birth_target(5), 5); // below `initial` passes through
        assert_eq!(p.birth_target(2), 4); // but never below the floor
        assert_eq!(p.birth_target(1), 4);
    }

    #[test]
    fn raw_target_boosts_and_drops() {
        let p = policy();
        // Cold block, all hosts stable: sheds copies.
        assert_eq!(p.raw_target(6, 0, 0, 6, 6), 4);
        // Cold block, mixed hosts: stays at base.
        assert_eq!(p.raw_target(6, 0, 0, 3, 6), 6);
        // Majority-risky hosts: boosted.
        assert_eq!(p.raw_target(6, 0, 3, 0, 6), 8);
        // Hot block never takes the stable drop, and stacks with risky.
        assert_eq!(p.raw_target(6, 5, 0, 6, 6), 8);
        assert_eq!(p.raw_target(6, 5, 6, 0, 6), 10);
    }

    #[test]
    fn raw_target_clamps_to_bounds() {
        let p = policy();
        assert_eq!(p.raw_target(12, 99, 6, 0, 6), p.r_max);
        assert_eq!(p.raw_target(4, 0, 0, 6, 6), p.r_min);
        // A hostless block (all replicas lost) keeps its base.
        assert_eq!(p.raw_target(6, 0, 0, 0, 0), 6);
    }

    #[test]
    fn hysteresis_raises_eagerly_lowers_reluctantly() {
        let p = policy(); // hysteresis = 1
        assert_eq!(p.apply(6, 8), 8); // raise applies immediately
        assert_eq!(p.apply(6, 5), 6); // one-copy lower: held
        assert_eq!(p.apply(6, 4), 4); // beyond the band: drops to raw
        assert_eq!(p.apply(6, 6), 6);
    }

    #[test]
    fn shrink_floor_is_half_target_at_least_one() {
        let p = policy();
        assert_eq!(p.shrink_floor(0), 1);
        assert_eq!(p.shrink_floor(1), 1);
        assert_eq!(p.shrink_floor(4), 2);
        assert_eq!(p.shrink_floor(9), 5);
        assert_eq!(p.shrink_floor(10), 5);
    }

    #[test]
    fn classification_bands() {
        let p = policy();
        let snap = AvailabilitySnapshot {
            sites: vec![
                SiteRisk { penalty: 0.0, lifetime_secs: 3600.0 }, // stable
                SiteRisk { penalty: 3.0, lifetime_secs: 3600.0 }, // risky (penalty)
                SiteRisk { penalty: 0.0, lifetime_secs: 900.0 },  // risky (lifetime)
                SiteRisk { penalty: 1.0, lifetime_secs: 3600.0 }, // neutral (mid penalty)
                SiteRisk { penalty: 0.0, lifetime_secs: 1500.0 }, // neutral (mid lifetime)
            ],
        };
        assert_eq!(snap.classify(SiteId(0), &p), SiteBand::Stable);
        assert_eq!(snap.classify(SiteId(1), &p), SiteBand::Risky);
        assert_eq!(snap.classify(SiteId(2), &p), SiteBand::Risky);
        assert_eq!(snap.classify(SiteId(3), &p), SiteBand::Neutral);
        assert_eq!(snap.classify(SiteId(4), &p), SiteBand::Neutral);
        // Unknown site: neutral.
        assert_eq!(snap.classify(SiteId(99), &p), SiteBand::Neutral);
    }
}
