//! Experiment driver: run one workload on one cluster configuration and
//! collect the measurements the paper reports.

use crate::cluster::{Cluster, ClusterCounters, RunPhase};
use crate::config::ClusterConfig;
use hog_mapreduce::jobtracker::JtCounters;
use hog_sim_core::engine::StopReason;
use hog_sim_core::metrics::StepSeries;
use hog_sim_core::{SimDuration, SimTime, Simulation};
use hog_workload::SubmissionSchedule;

/// Outcome of one job of the workload.
#[derive(Clone, Copy, Debug)]
pub struct JobOutcome {
    /// Index in the submission schedule.
    pub index: usize,
    /// Table I bin.
    pub bin: u8,
    /// Map / reduce task counts.
    pub maps: u32,
    /// Reduce task count.
    pub reduces: u32,
    /// Submission instant (absolute).
    pub submitted: SimTime,
    /// Completion instant, if it finished.
    pub finished: Option<SimTime>,
    /// Whether it succeeded (false = failed or unfinished at horizon).
    pub succeeded: bool,
}

impl JobOutcome {
    /// Job response time (completion − submission).
    pub fn response(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.saturating_since(self.submitted))
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Config label.
    pub name: String,
    /// Seed used.
    pub seed: u64,
    /// Workload response time: first submission → last job terminal.
    /// `None` when the horizon cut the run short.
    pub response_time: Option<SimDuration>,
    /// Instant of the first submission.
    pub workload_start: Option<SimTime>,
    /// Per-job outcomes.
    pub jobs: Vec<JobOutcome>,
    /// Master-view node availability over time (Figure 5).
    pub reported_series: StepSeries,
    /// Actually-usable daemons over time.
    pub actual_series: StepSeries,
    /// Area beneath the reported curve over the workload window
    /// (Table IV, node·seconds).
    pub area_reported: f64,
    /// JobTracker counters (locality, speculation, failures).
    pub jt: JtCounters,
    /// Namenode counters: (repl completed, repl failed, blocks lost,
    /// bad-replica reports).
    pub nn_counters: (u64, u64, u64, u64),
    /// Missing blocks at the end of the run.
    pub missing_blocks: usize,
    /// Missing *input* blocks at the end of the run.
    pub missing_input_blocks: usize,
    /// Mediator counters.
    pub cluster: ClusterCounters,
    /// Grid counters: (preemptions, outages, node starts).
    pub grid: Option<(u64, u64, u64)>,
    /// Elastic controller resize history: (time, signed node delta).
    /// Empty whenever the controller is off.
    pub elastic_actions: Vec<(SimTime, i64)>,
    /// Wall-clock of the simulation end.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// High-water mark of the pending-event queue.
    pub peak_queue: usize,
    /// Fluid-net rate recomputations performed.
    pub net_recomputes: u64,
    /// Total flows examined across those recomputations (per-recompute
    /// work; see [`hog_net::FluidNet::recompute_work`]).
    pub net_recompute_work: u64,
    /// Why the run stopped.
    pub stopped_early: bool,
    /// Human-readable summaries of jobs that never reached a terminal
    /// state (only populated when the horizon cut the run short).
    pub stuck_jobs: Vec<String>,
    /// Why the chaos layer aborted the run, if it did (invariant
    /// violation or livelock). `None` on clean runs and whenever chaos
    /// supervision is off.
    pub chaos_failure: Option<hog_chaos::ChaosFailure>,
    /// The structured trace, when `cfg.obs.trace` was on (hog-obs).
    pub trace: Option<hog_obs::TraceLog>,
    /// The per-layer metrics registry, when `cfg.obs.metrics` was on.
    pub metrics: Option<hog_obs::MetricsRegistry>,
    /// Master-failover accounting (crashes, promotions, recovery and
    /// lost-edit-window durations, re-registration storms). All zeros
    /// unless `cfg.failover` was set and a `MasterCrash` fired.
    pub failover: crate::master::FailoverStats,
    /// Availability-policy activity (X17): `(targets raised, targets
    /// lowered, excess replicas trimmed)`. All zeros when the policy is
    /// off.
    pub availability: (u64, u64, u64),
    /// Total replica bytes materialised on datanodes (writes + repairs).
    pub replica_bytes: u64,
    /// Bytes re-replicated by the replication monitor (repair traffic
    /// subset of `replica_bytes`).
    pub repair_bytes: u64,
}

impl RunResult {
    /// Jobs that succeeded.
    pub fn jobs_succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.succeeded).count()
    }

    /// Jobs that failed or never finished.
    pub fn jobs_failed(&self) -> usize {
        self.jobs.len() - self.jobs_succeeded()
    }

    /// Mean job response time in seconds over finished jobs.
    pub fn mean_job_response_secs(&self) -> f64 {
        let times: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.response().map(|d| d.as_secs_f64()))
            .collect();
        if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        }
    }
}

/// Default safety horizon for a single workload run (simulated time).
pub const DEFAULT_HORIZON: SimDuration = SimDuration::from_secs(60 * 3600);

/// Run `schedule` on a cluster built from `cfg`. The horizon bounds the
/// *simulated* time (a safety net for pathological configurations — e.g.
/// first-iteration HOG with zombies and no fix).
pub fn run_workload(
    cfg: ClusterConfig,
    schedule: &SubmissionSchedule,
    horizon: SimDuration,
) -> RunResult {
    run_workload_with_events(cfg, schedule, horizon, Vec::new())
}

/// Like [`run_workload`], but with extra operator actions injected at
/// absolute instants — e.g. [`crate::event::Event::ResizePool`] to grow or
/// shrink the glidein pool mid-run (§IV-C) or
/// [`crate::event::Event::BalancerTick`] to rebalance HDFS afterwards.
pub fn run_workload_with_events(
    cfg: ClusterConfig,
    schedule: &SubmissionSchedule,
    horizon: SimDuration,
    extra: Vec<(SimTime, crate::event::Event)>,
) -> RunResult {
    let mut cluster = Cluster::new(cfg, schedule);
    let mut sim = Simulation::new()
        .with_horizon(SimTime::ZERO + horizon)
        .with_event_budget(2_000_000_000);
    cluster.bootstrap(&mut sim);
    for (at, ev) in extra {
        sim.schedule(at, ev);
    }
    let stats = sim.run(&mut cluster);
    collect_result(cluster, schedule, stats)
}

/// Turn a finished (or horizon-cut) cluster model into a [`RunResult`].
/// Shared by [`run_workload`] and the hog-fed federation executor, which
/// drives pool clusters itself and synthesizes per-pool
/// [`hog_sim_core::engine::RunStats`].
pub fn collect_result(
    mut cluster: Cluster,
    schedule: &SubmissionSchedule,
    stats: hog_sim_core::engine::RunStats,
) -> RunResult {
    let name = cluster.config().name.clone();
    let seed = cluster.config().seed;
    let workload_start = cluster.workload_start;
    let response_time = match (workload_start, cluster.workload_end) {
        (Some(s), Some(e)) => Some(e.saturating_since(s)),
        _ => None,
    };
    let jobs: Vec<JobOutcome> = schedule
        .jobs()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let submitted =
                workload_start.unwrap_or(SimTime::ZERO) + (spec.submit_at - SimTime::ZERO);
            let (finished, succeeded) = match cluster.job_results[i] {
                Some((t, ok)) => (Some(t), ok),
                None => (None, false),
            };
            JobOutcome {
                index: i,
                bin: spec.bin,
                maps: spec.maps,
                reduces: spec.reduces,
                submitted,
                finished,
                succeeded,
            }
        })
        .collect();
    let area = match (workload_start, cluster.workload_end) {
        (Some(s), Some(e)) => cluster.reported_series.area(s, e),
        _ => 0.0,
    };
    let grid = cluster
        .grid()
        .map(|g| (g.preemption_count(), g.outage_count(), g.node_start_count()));
    let mut stuck_jobs = Vec::new();
    for (i, r) in cluster.job_results.iter().enumerate() {
        if r.is_some() {
            continue;
        }
        if let Some(jid) = cluster.job_for_index(i) {
            let j = cluster.jobtracker().job(jid);
            let running_maps: usize = j.maps.iter().map(|t| t.running_attempts()).sum();
            let running_reds: usize = j.reduces.iter().map(|t| t.running_attempts()).sum();
            stuck_jobs.push(format!(
                "job {i} (bin {}): maps {}/{} (pending {}, running {}), reduces {}/{} (pending {}, running {}), plans {}",
                schedule.jobs()[i].bin,
                j.maps_done,
                j.spec.maps(),
                j.pending_maps.len(),
                running_maps,
                j.reduces_done,
                j.spec.reduces,
                j.pending_reduces.len(),
                running_reds,
                j.reduce_plans.len(),
            ));
        } else {
            stuck_jobs.push(format!("job {i}: never submitted"));
        }
    }
    RunResult {
        name,
        seed,
        response_time,
        workload_start,
        jobs,
        area_reported: area,
        jt: cluster.jobtracker().counters(),
        nn_counters: cluster.namenode().counters(),
        missing_blocks: cluster.namenode().missing_block_count(),
        missing_input_blocks: cluster.missing_input_blocks(),
        cluster: cluster.counters,
        grid,
        elastic_actions: cluster.elastic_actions.clone(),
        stuck_jobs,
        end_time: stats.end_time,
        events: stats.events_handled,
        peak_queue: stats.peak_queue,
        net_recomputes: cluster.network().recompute_count(),
        net_recompute_work: cluster.network().recompute_work(),
        stopped_early: stats.stop != hog_sim_core::engine::StopReason::ModelFinished
            && cluster.phase() != RunPhase::Done,
        chaos_failure: cluster.chaos_failure().cloned(),
        trace: cluster.take_trace(),
        metrics: cluster.take_metrics(),
        failover: cluster.failover_stats().clone(),
        availability: cluster.namenode().availability_counters(),
        replica_bytes: cluster.namenode().bytes_written(),
        repair_bytes: cluster.namenode().bytes_rereplicated(),
        reported_series: cluster.reported_series,
        actual_series: cluster.actual_series,
    }
}

/// Convenience: assert a run finished (used by tests).
pub fn assert_finished(r: &RunResult) {
    assert!(
        !r.stopped_early,
        "run {} did not finish: {} jobs incomplete",
        r.name,
        r.jobs.len() - r.jobs.iter().filter(|j| j.finished.is_some()).count()
    );
    let _ = StopReason::ModelFinished;
}
