//! Experiment harnesses — one function per paper artifact (Tables I–IV,
//! Figures 4–5) and per ablation (X1–X7 in DESIGN.md).
//!
//! Each harness returns plain data; the `hog-bench` binaries render it as
//! text tables / ASCII figures / CSV. Every experiment is deterministic
//! given its seeds.

use crate::config::{ClusterConfig, PlacementKind};
use crate::driver::{run_workload, RunResult};
use crate::sweep::{run_sweep, SweepPoint};
use hog_sim_core::{SimDuration, SimTime};
use hog_workload::SubmissionSchedule;

/// The pool sizes the paper samples in Figure 4.
pub const FIG4_POOL_SIZES: [usize; 12] = [40, 50, 55, 60, 99, 100, 132, 160, 171, 180, 974, 1101];

/// Default horizon for experiment runs.
pub const HORIZON: SimDuration = SimDuration::from_secs(60 * 3600);

/// One point of Figure 4: a pool size with its per-run response times.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    /// Max pool size configured (the x axis).
    pub nodes: usize,
    /// Response time per run, seconds (3 runs in the paper).
    pub responses: Vec<f64>,
}

impl Fig4Point {
    /// Mean response across runs.
    pub fn mean(&self) -> f64 {
        if self.responses.is_empty() {
            return f64::NAN;
        }
        self.responses.iter().sum::<f64>() / self.responses.len() as f64
    }
}

/// Figure 4 data: HOG response-time curve plus the dedicated baseline.
#[derive(Clone, Debug)]
pub struct Fig4 {
    /// One point per pool size.
    pub hog: Vec<Fig4Point>,
    /// Dedicated-cluster response times (one per run).
    pub cluster: Vec<f64>,
    /// Raw results for deeper reporting.
    pub runs: Vec<RunResult>,
}

impl Fig4 {
    /// Mean dedicated-cluster response.
    pub fn cluster_mean(&self) -> f64 {
        if self.cluster.is_empty() {
            return f64::NAN;
        }
        self.cluster.iter().sum::<f64>() / self.cluster.len() as f64
    }

    /// The strict crossover: smallest sampled pool size whose mean
    /// response beats the cluster outright.
    pub fn crossover_nodes(&self) -> Option<usize> {
        self.equivalence_at(0.0)
    }

    /// The equivalent-performance point at a tolerance: smallest sampled
    /// pool size whose mean response is within `tol` (e.g. 0.05 = 5 %) of
    /// the cluster mean. The paper reports the curve crossing between 99
    /// and 100 nodes; with three runs per point, a small tolerance absorbs
    /// churn-induced run-to-run variance.
    pub fn equivalence_at(&self, tol: f64) -> Option<usize> {
        let base = self.cluster_mean() * (1.0 + tol);
        self.hog
            .iter()
            .filter(|p| p.mean().is_finite() && p.mean() <= base)
            .map(|p| p.nodes)
            .min()
    }
}

/// Reproduce Figure 4: `runs_per_point` seeds at each pool size in
/// `sizes`, plus the dedicated baseline. `threads` parallelises across
/// runs.
pub fn figure4(sizes: &[usize], runs_per_point: usize, threads: usize) -> Fig4 {
    let mut points = Vec::new();
    for &n in sizes {
        for r in 0..runs_per_point {
            points.push(SweepPoint {
                cfg: ClusterConfig::hog(n, 100 + r as u64),
                workload_seed: 1000 + r as u64,
            });
        }
    }
    for r in 0..runs_per_point {
        points.push(SweepPoint {
            cfg: ClusterConfig::dedicated(100 + r as u64),
            workload_seed: 1000 + r as u64,
        });
    }
    let results = run_sweep(points, HORIZON, threads);
    let mut hog = Vec::new();
    let mut idx = 0;
    for &n in sizes {
        let mut responses = Vec::new();
        for _ in 0..runs_per_point {
            if let Some(d) = results[idx].response_time {
                responses.push(d.as_secs_f64());
            }
            idx += 1;
        }
        hog.push(Fig4Point { nodes: n, responses });
    }
    let cluster: Vec<f64> = results[idx..]
        .iter()
        .filter_map(|r| r.response_time.map(|d| d.as_secs_f64()))
        .collect();
    Fig4 {
        hog,
        cluster,
        runs: results,
    }
}

/// One Figure 5 trace with its Table IV row.
#[derive(Clone, Debug)]
pub struct Fig5Run {
    /// Label, e.g. "5a-stable".
    pub label: String,
    /// Response time, seconds.
    pub response: f64,
    /// Area beneath the reported-nodes curve over the workload window
    /// (node·seconds), Table IV.
    pub area: f64,
    /// The full run (for rendering the trace).
    pub result: RunResult,
}

/// Reproduce Figure 5 + Table IV: three 55-node runs — two on stable
/// sites, one under heavy churn — reporting response time and the area
/// beneath the availability curve. In the paper, the larger the node
/// fluctuation (smaller area), the longer the response.
pub fn figure5(threads: usize) -> Vec<Fig5Run> {
    // Stable runs keep the default 12 h mean glidein lifetime; the
    // unstable run models a preemption-heavy day (75 min mean). The paper
    // saw a 1.6× response gap between its best stable and its unstable
    // run; pushing churn much harder than this turns the gap into an
    // order of magnitude because the upload phase starts thrashing too.
    let stable_lifetime = SimDuration::from_secs(12 * 3600);
    let unstable_lifetime = SimDuration::from_secs(75 * 60);
    let points = vec![
        SweepPoint {
            cfg: ClusterConfig::hog(55, 501)
                .with_mean_lifetime(stable_lifetime)
                .named("5a-stable"),
            workload_seed: 1500,
        },
        SweepPoint {
            cfg: ClusterConfig::hog(55, 502)
                .with_mean_lifetime(stable_lifetime)
                .named("5b-stable"),
            workload_seed: 1500,
        },
        SweepPoint {
            cfg: ClusterConfig::hog(55, 503)
                .with_mean_lifetime(unstable_lifetime)
                .named("5c-unstable"),
            workload_seed: 1500,
        },
    ];
    let results = run_sweep(points, HORIZON, threads);
    results
        .into_iter()
        .map(|r| Fig5Run {
            label: r.name.clone(),
            response: r
                .response_time
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            area: r.area_reported,
            result: r,
        })
        .collect()
}

/// One arm of a multi-arm comparison.
#[derive(Clone, Debug)]
pub struct ComparisonArm {
    /// Label.
    pub label: String,
    /// The run.
    pub result: RunResult,
}

impl ComparisonArm {
    /// Response seconds (NaN if unfinished).
    pub fn response(&self) -> f64 {
        self.result
            .response_time
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN)
    }
}

/// A labelled set of runs under contrasting configurations.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The arms, in input order.
    pub arms: Vec<ComparisonArm>,
}

fn compare(points: Vec<(String, SweepPoint)>, threads: usize) -> Comparison {
    let (labels, pts): (Vec<_>, Vec<_>) = points.into_iter().unzip();
    let results = run_sweep(pts, HORIZON, threads);
    Comparison {
        arms: labels
            .into_iter()
            .zip(results)
            .map(|(label, result)| ComparisonArm { label, result })
            .collect(),
    }
}

/// X1 — dead-node timeout ablation: HOG's 30 s detection vs the stock
/// ~10.5 min recheck interval, under churn.
pub fn ablation_heartbeat(nodes: usize, threads: usize) -> Comparison {
    let churn = SimDuration::from_secs(45 * 60);
    compare(
        vec![
            (
                "hog-30s-timeout".into(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 601)
                        .with_mean_lifetime(churn)
                        .named("hog-30s-timeout"),
                    workload_seed: 1600,
                },
            ),
            (
                "stock-630s-timeout".into(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 601)
                        .with_mean_lifetime(churn)
                        .with_dead_timeout(SimDuration::from_secs(630))
                        .named("stock-630s-timeout"),
                    workload_seed: 1600,
                },
            ),
        ],
        threads,
    )
}

/// X2 — replication-factor sweep under churn: the paper's "10 replicas
/// was the experimental number which worked".
pub fn ablation_replication(
    nodes: usize,
    factors: &[u16],
    threads: usize,
) -> Vec<(u16, ComparisonArm)> {
    let churn = SimDuration::from_secs(35 * 60);
    let points: Vec<(String, SweepPoint)> = factors
        .iter()
        .map(|&f| {
            let label = format!("replication-{f}");
            (
                label.clone(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 602)
                        .with_mean_lifetime(churn)
                        .with_replication(f)
                        .named(label),
                    workload_seed: 1601,
                },
            )
        })
        .collect();
    let cmp = compare(points, threads);
    factors.iter().copied().zip(cmp.arms).collect()
}

/// X3 — zombie datanodes: first-iteration HOG (no fix) vs the disk-check
/// fix vs no zombies at all.
pub fn ablation_zombie(nodes: usize, threads: usize) -> Comparison {
    let churn = SimDuration::from_secs(45 * 60);
    compare(
        vec![
            (
                "no-zombies".into(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 603)
                        .with_mean_lifetime(churn)
                        .named("no-zombies"),
                    workload_seed: 1602,
                },
            ),
            (
                "zombies-no-fix".into(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 603)
                        .with_mean_lifetime(churn)
                        .with_zombies(0.3, false)
                        .named("zombies-no-fix"),
                    workload_seed: 1602,
                },
            ),
            (
                "zombies-disk-check".into(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 603)
                        .with_mean_lifetime(churn)
                        .with_zombies(0.3, true)
                        .named("zombies-disk-check"),
                    workload_seed: 1602,
                },
            ),
        ],
        threads,
    )
}

/// X4 — disk overflow (§IV-D.2): shrink the workers' scratch disks until
/// intermediate-data buildup causes task failures. One 64 MB map spills
/// 32 MiB, so the interesting range is a few map-outputs' worth.
pub fn ablation_disk(
    nodes: usize,
    scratch_mib: &[u64],
    threads: usize,
) -> Vec<(u64, ComparisonArm)> {
    let points: Vec<(String, SweepPoint)> = scratch_mib
        .iter()
        .map(|&m| {
            let label = format!("scratch-{m}MiB");
            let mut cfg = ClusterConfig::hog(nodes, 604).named(label.clone());
            cfg.mr = cfg.mr.with_scratch(m * hog_sim_core::units::MIB);
            (
                label,
                SweepPoint {
                    cfg,
                    workload_seed: 1603,
                },
            )
        })
        .collect();
    let cmp = compare(points, threads);
    scratch_mib.iter().copied().zip(cmp.arms).collect()
}

/// X6 — multi-copy task execution (§VI future work): eager K copies of
/// every task under churn, taking the fastest.
pub fn ablation_multicopy(nodes: usize, copies: &[u8], threads: usize) -> Vec<(u8, ComparisonArm)> {
    let churn = SimDuration::from_secs(35 * 60);
    let points: Vec<(String, SweepPoint)> = copies
        .iter()
        .map(|&k| {
            let label = format!("copies-{k}");
            (
                label.clone(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 606)
                        .with_mean_lifetime(churn)
                        .with_task_copies(k, k > 2)
                        .named(label),
                    workload_seed: 1605,
                },
            )
        })
        .collect();
    let cmp = compare(points, threads);
    copies.iter().copied().zip(cmp.arms).collect()
}

/// X7 — site awareness ablation: HOG's site-aware placement vs
/// rack-oblivious random placement, under site outages (the failure mode
/// site awareness exists to survive).
pub fn ablation_siteaware(nodes: usize, threads: usize) -> Comparison {
    let mk = |placement: PlacementKind, name: &str| {
        // Replication 2 so placement alone decides whether one whole-site
        // outage can eat every replica of a block: site-aware placement
        // guarantees two distinct sites per block, oblivious placement
        // stacks ~1/5 of blocks inside a single failure domain. (At HOG's
        // replication 10 even random placement straddles sites.)
        let mut cfg = ClusterConfig::hog(nodes, 607)
            .with_replication(2)
            .with_placement(placement)
            .named(name.to_string());
        if let crate::config::ResourceConfig::Grid { sites, .. } = &mut cfg.resource {
            for s in sites.iter_mut() {
                s.outage_mtbf = Some(hog_sim_core::dist::Exponential::from_mean(
                    SimDuration::from_secs(3 * 3600),
                ));
                s.outage_duration = hog_sim_core::dist::UniformDuration::new(
                    SimDuration::from_mins(5),
                    SimDuration::from_mins(15),
                );
            }
        }
        SweepPoint {
            cfg,
            workload_seed: 1606,
        }
    };
    compare(
        vec![
            (
                "site-aware".into(),
                mk(PlacementKind::SiteAware, "site-aware"),
            ),
            (
                "rack-oblivious".into(),
                mk(PlacementKind::RackOblivious, "rack-oblivious"),
            ),
        ],
        threads,
    )
}

/// Locality study (§IV-D: "The high replication factor for HOG allows
/// for very good data locality"): sweep the replication factor and report
/// the map-locality mix. Returns `(factor, node_local, site_local,
/// remote, response_secs)` per factor.
pub fn locality_vs_replication(
    nodes: usize,
    factors: &[u16],
    threads: usize,
) -> Vec<(u16, u64, u64, u64, f64)> {
    let points: Vec<(String, SweepPoint)> = factors
        .iter()
        .map(|&f| {
            let label = format!("locality-r{f}");
            (
                label.clone(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 608)
                        .with_replication(f)
                        .named(label),
                    workload_seed: 1607,
                },
            )
        })
        .collect();
    let cmp = compare(points, threads);
    factors
        .iter()
        .zip(cmp.arms)
        .map(|(&f, arm)| {
            let jt = arm.result.jt;
            (f, jt.node_local, jt.site_local, jt.remote, arm.response())
        })
        .collect()
}

/// X10 — graceful degradation under escalating chaos: replay the same
/// workload while a seeded [`hog_chaos::FaultPlan`] injects ever harsher
/// cross-layer faults (preemption bursts, site partitions, WAN
/// degradation, zombie outbreaks, stragglers, master stalls), with the
/// invariant auditor and livelock watchdog armed. Returns one arm per
/// intensity, 0 = fault-free control.
pub fn ablation_chaos(
    nodes: usize,
    intensities: &[u32],
    threads: usize,
) -> Vec<(u32, ComparisonArm)> {
    let sites: Vec<String> = hog_grid::config::paper_sites()
        .into_iter()
        .map(|s| s.name)
        .collect();
    let site_refs: Vec<&str> = sites.iter().map(String::as_str).collect();
    let points: Vec<(String, SweepPoint)> = intensities
        .iter()
        .map(|&k| {
            let label = format!("chaos-{k}");
            (
                label.clone(),
                SweepPoint {
                    cfg: ClusterConfig::hog(nodes, 610)
                        .with_fault_plan(hog_chaos::FaultPlan::escalating(610, k, &site_refs))
                        .with_audit(true)
                        .with_watchdog(SimDuration::from_secs(3600))
                        .named(label),
                    workload_seed: 1610,
                },
            )
        })
        .collect();
    let cmp = compare(points, threads);
    intensities.iter().copied().zip(cmp.arms).collect()
}

/// Run one configuration against the paper workload (used by examples and
/// tests).
pub fn single_run(cfg: ClusterConfig, workload_seed: u64) -> RunResult {
    let schedule = SubmissionSchedule::facebook_truncated(workload_seed);
    run_workload(cfg, &schedule, HORIZON)
}

/// The workload window of a run (for rendering availability traces).
pub fn workload_window(r: &RunResult) -> (SimTime, SimTime) {
    let start = r.workload_start.unwrap_or(SimTime::ZERO);
    let end = r
        .jobs
        .iter()
        .filter_map(|j| j.finished)
        .max()
        .unwrap_or(start);
    (start, end)
}
