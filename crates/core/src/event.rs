//! The unified event alphabet of a full-cluster simulation.

use hog_grid::GridEvent;
use hog_mapreduce::AttemptRef;
use hog_net::NodeId;

/// Everything that can happen in a cluster run. The mediator
/// ([`crate::cluster::Cluster`]) dispatches these to the substrate state
/// machines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A grid-layer event (provisioning, preemption, outages, …).
    Grid(GridEvent),
    /// Advance the network model; deliver finished flows.
    NetTick,
    /// Periodic master work: namenode tick (death detection +
    /// replication monitor), jobtracker death check, series sampling.
    MasterTick,
    /// A tasktracker heartbeat (scheduling opportunity).
    Heartbeat {
        /// The heartbeating worker.
        node: NodeId,
    },
    /// The worker's periodic working-directory self-check (zombie fix).
    DiskCheck {
        /// The checking worker.
        node: NodeId,
    },
    /// A map attempt finished reading its input.
    MapInputReady {
        /// The attempt.
        attempt: AttemptRef,
    },
    /// A map attempt finished its map function.
    MapComputeDone {
        /// The attempt.
        attempt: AttemptRef,
    },
    /// A map attempt finished spilling its output to local disk.
    MapSpillDone {
        /// The attempt.
        attempt: AttemptRef,
    },
    /// A reduce attempt finished merge-sort + reduce compute.
    ReduceSortDone {
        /// The attempt.
        attempt: AttemptRef,
    },
    /// A shuffle fetch aimed at an unusable source timed out.
    FetchTimeout {
        /// The fetching reduce attempt.
        attempt: AttemptRef,
        /// The failed order id.
        order: u64,
    },
    /// An attempt is doomed (zombie node, missing block); report the
    /// failure after its short futile lifetime.
    AttemptDoomed {
        /// The attempt.
        attempt: AttemptRef,
        /// Encoded reason (see `cluster::DoomReason`).
        reason: DoomReason,
    },
    /// Submit workload job `index` (relative to the workload start).
    SubmitJob {
        /// Index into the submission schedule.
        index: usize,
    },
    /// Try to keep `upload_parallel` input blocks in flight.
    PumpUpload,
    /// Elastically resize the glidein pool (paper §IV-C): positive delta
    /// submits more Condor jobs, negative removes workers.
    ResizePool {
        /// Signed change in target pool size.
        delta: i64,
    },
    /// Run one HDFS balancer iteration (paper: "They can use the HDFS
    /// balancer to balance the data distribution").
    BalancerTick,
    /// Inject fault `index` of the configured
    /// [`FaultPlan`](hog_chaos::FaultPlan) (hog-chaos).
    Chaos {
        /// Index into the fault plan.
        index: u32,
    },
    /// End the windowed fault `index` of the configured fault plan
    /// (heal a partition, restore WAN bandwidth, …).
    ChaosEnd {
        /// Index into the fault plan.
        index: u32,
    },
    /// The standby's detection timeout fired after a `MasterCrash`:
    /// promote the checkpoint-restored Namenode+JobTracker stack and run
    /// the recovery protocol (re-registration, block-report replay, task
    /// reconciliation).
    MasterPromote,
}

/// Why an attempt was doomed at start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoomReason {
    /// Assigned to a zombie node (working directory gone).
    Zombie,
    /// Input block had no readable replica.
    LostBlock,
}
