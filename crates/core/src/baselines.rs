//! HOD- and MOON-style comparators (§V related work, quantified).
//!
//! The paper argues against both systems qualitatively; these harnesses
//! make the comparison measurable on the same substrate (experiment X5).
//!
//! * **HOD** (Hadoop On Demand) builds a temporary Hadoop cluster per
//!   MapReduce request and tears it down afterwards: every job pays node
//!   acquisition, cluster construction and input staging on its critical
//!   path, and the cluster size is fixed per request. We model each job
//!   as its own pool-formation + upload + single-job run (concurrent
//!   across jobs, as HOD instances are independent), so a job's response
//!   time *includes* the reconstruction overhead HOG amortises away.
//! * **MOON** anchors HDFS durability on a small set of dedicated
//!   (never-preempted) nodes holding one replica of every block, letting
//!   the opportunistic replication factor stay low — at the cost of the
//!   anchor becoming a capacity/bandwidth bottleneck and scalability
//!   limit. We model the anchor as an extra non-preempting grid site plus
//!   the [`hog_hdfs::AnchorFirstPolicy`].

use crate::config::{ClusterConfig, PlacementKind, ResourceConfig};
use crate::driver::{run_workload, RunResult};
use crate::sweep::{run_sweep_schedules, SchedulePoint};
use hog_grid::SiteConfig;
use hog_sim_core::{SimDuration, SimTime};
use hog_workload::facebook::Bin;
use hog_workload::{JobSpec, SubmissionSchedule};

/// Outcome of a HOD workload replay.
#[derive(Clone, Debug)]
pub struct HodResult {
    /// Workload response: first submission → last completion, seconds.
    pub response_secs: f64,
    /// Mean per-job reconstruction overhead (formation + staging), secs.
    pub mean_overhead_secs: f64,
    /// Jobs that succeeded.
    pub jobs_succeeded: usize,
    /// Total jobs.
    pub jobs: usize,
    /// Per-job total times (overhead + execution), seconds.
    pub per_job_total: Vec<f64>,
}

/// Replay `schedule` HOD-style: each job gets a fresh `nodes_per_cluster`
/// glidein pool, waits out formation and input staging, runs alone, and
/// the pool is discarded. Jobs run concurrently (independent HOD
/// instances). `threads` parallelises the per-job simulations.
pub fn run_hod_workload(
    schedule: &SubmissionSchedule,
    nodes_per_cluster: usize,
    mean_lifetime: SimDuration,
    seed: u64,
    threads: usize,
) -> HodResult {
    // One single-job schedule per job of the workload.
    let points: Vec<SchedulePoint> = schedule
        .jobs()
        .iter()
        .map(|spec| {
            let bin = Bin {
                number: spec.bin,
                maps_at_facebook: (spec.maps, spec.maps),
                fraction_at_facebook: 0.0,
                maps: spec.maps,
                jobs_in_benchmark: 1,
                reduces: spec.reduces,
            };
            SchedulePoint {
                cfg: ClusterConfig::hog(nodes_per_cluster, seed + spec.id as u64)
                    .with_mean_lifetime(mean_lifetime)
                    .named(format!("hod-job-{}", spec.id)),
                schedule: SubmissionSchedule::from_bins(&[bin], seed + spec.id as u64),
            }
        })
        .collect();
    let horizon = SimDuration::from_secs(60 * 3600);
    let results = run_sweep_schedules(points, horizon, threads);

    let mut per_job_total = Vec::new();
    let mut overheads = Vec::new();
    let mut ok = 0usize;
    let mut last_finish = SimTime::ZERO;
    let first_submit = schedule.jobs().first().map_or(SimTime::ZERO, |j| j.submit_at);
    for (spec, r) in schedule.jobs().iter().zip(&results) {
        // HOD total = formation + upload (workload_start, since t=0) plus
        // the job's own execution.
        let overhead = r.workload_start.map_or(f64::NAN, |t| t.as_secs_f64());
        let exec = r.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        let total = overhead + exec;
        overheads.push(overhead);
        per_job_total.push(total);
        if r.jobs_succeeded() == r.jobs.len() {
            ok += 1;
            let finish = spec.submit_at + SimDuration::from_secs_f64(total);
            last_finish = last_finish.max(finish);
        }
    }
    let response = last_finish.saturating_since(first_submit).as_secs_f64();
    HodResult {
        response_secs: response,
        mean_overhead_secs: overheads.iter().copied().filter(|x| x.is_finite()).sum::<f64>()
            / overheads.len().max(1) as f64,
        jobs_succeeded: ok,
        jobs: schedule.len(),
        per_job_total,
    }
}

/// Build a MOON-style configuration: `anchors` dedicated nodes in an
/// `ANCHOR` site that never preempts, `target_nodes - anchors`
/// opportunistic glideins at the paper's sites, anchor-pinned placement,
/// opportunistic replication 3 (the anchor replica carries durability).
pub fn moon_config(target_nodes: usize, anchors: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::hog(target_nodes, seed)
        .with_replication(3)
        .named(format!("moon-{target_nodes}-a{anchors}"));
    cfg.placement = PlacementKind::AnchorFirst {
        site_name: "ANCHOR".to_string(),
    };
    if let ResourceConfig::Grid { sites, .. } = &mut cfg.resource {
        // The anchor site: exactly `anchors` slots, effectively infinite
        // node lifetime, no outages.
        let anchor = SiteConfig::stable("ANCHOR", "anchor.unl.edu", anchors)
            .with_mean_lifetime(SimDuration::from_secs(1_000_000_000));
        sites.insert(0, anchor);
    }
    cfg
}

/// Run the three-way X5 comparison: HOG vs MOON vs HOD under churn.
/// Returns (hog, moon, hod).
pub fn compare_hog_moon_hod(
    nodes: usize,
    mean_lifetime: SimDuration,
    workload_seed: u64,
    threads: usize,
) -> (RunResult, RunResult, HodResult) {
    let schedule = SubmissionSchedule::facebook_truncated(workload_seed);
    let horizon = SimDuration::from_secs(60 * 3600);
    let hog = run_workload(
        ClusterConfig::hog(nodes, 701).with_mean_lifetime(mean_lifetime),
        &schedule,
        horizon,
    );
    let anchors = (nodes / 10).max(2);
    let mut moon_cfg = moon_config(nodes, anchors, 702);
    moon_cfg = moon_cfg.with_mean_lifetime(mean_lifetime);
    // with_mean_lifetime rewrote every site's lifetime including the
    // anchor's; restore the anchor's immortality.
    if let ResourceConfig::Grid { sites, .. } = &mut moon_cfg.resource {
        if let Some(anchor) = sites.iter_mut().find(|s| s.name == "ANCHOR") {
            *anchor = anchor
                .clone()
                .with_mean_lifetime(SimDuration::from_secs(1_000_000_000));
        }
    }
    let moon = run_workload(moon_cfg, &schedule, horizon);
    let hod = run_hod_workload(&schedule, nodes / 4, mean_lifetime, 703, threads);
    (hog, moon, hod)
}

/// Expose the per-job spec list of a schedule (report helper).
pub fn job_specs(schedule: &SubmissionSchedule) -> &[JobSpec] {
    schedule.jobs()
}
