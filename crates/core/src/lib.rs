//! HOG: Hadoop On the Grid — the paper's system, rebuilt as a
//! deterministic discrete-event simulation.
//!
//! This crate is the *mediator* layer: it owns simulated time and wires
//! the substrate state machines together —
//!
//! * [`hog_grid`] supplies (and preempts) worker nodes;
//! * [`hog_hdfs`] places, replicates and serves blocks;
//! * [`hog_mapreduce`] schedules jobs onto tasktrackers;
//! * [`hog_net`] moves every byte (map input, shuffle, replication,
//!   pipeline writes) through a max-min fair fluid network;
//! * [`hog_workload`] generates the Facebook schedule.
//!
//! Entry points:
//!
//! * [`config::ClusterConfig`] — presets: [`config::ClusterConfig::hog`]
//!   (the paper's system: five OSG sites, replication 10, 30 s failure
//!   detection, site awareness) and
//!   [`config::ClusterConfig::dedicated`] (Table III's 30-node /
//!   100-core local cluster baseline).
//! * [`driver::run_workload`] — build a cluster, form the pool, stage the
//!   input data, replay a submission schedule, and report the workload
//!   response time plus node-availability series (Figures 4 & 5, Table
//!   IV).
//! * [`experiments`] — one module per paper artifact and ablation.
//! * [`baselines`] — HOD- and MOON-style comparators (§V related work).
//! * [`sweep`] — embarrassingly-parallel multi-run harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod baselines;
pub mod cluster;
pub mod config;
pub mod driver;
pub mod event;
pub mod experiments;
pub mod master;
pub mod report;
pub mod sweep;

pub use cluster::Cluster;
pub use config::{
    ChaosOptions, ClusterConfig, FailoverConfig, PlacementKind, ResourceConfig, ZombieConfig,
};
pub use driver::{run_workload, JobOutcome, RunResult};
pub use hog_chaos as chaos;
pub use hog_mapreduce::SchedPolicy;
pub use hog_obs as obs;
pub use master::{FailoverStats, MasterCheckpoint, MasterStack, MasterStatus, SingleMasterStack};
