//! Adaptive replication — the paper's second §VI proposal, implemented.
//!
//! > "We can use the rate of shrinking and growing to detect the
//! > instability of HOG to set the number of replicas of the files and
//! > the number of redundant MapReduce tasks."
//!
//! [`AdaptiveReplication`] watches the node-loss rate over a sliding
//! window and maps it to a replication factor between a floor and a
//! ceiling: a quiet grid gets the floor (less replication traffic and
//! disk), a stormy grid gets the ceiling (survive preemption bursts).
//! The mediator applies the output to the namenode's default (new files)
//! and, optionally, retargets existing input files.

use hog_sim_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sliding-window loss-rate → replication-factor controller.
#[derive(Clone, Debug)]
pub struct AdaptiveReplication {
    /// Lowest factor the controller will ever choose.
    pub min_replication: u16,
    /// Highest factor (HOG's experimental 10).
    pub max_replication: u16,
    /// Window over which losses are counted.
    pub window: SimDuration,
    /// Loss rate (nodes/hour, normalised per 100 pool nodes) at which the
    /// ceiling is reached; the factor interpolates linearly below it.
    pub storm_rate_per_100: f64,
    losses: VecDeque<SimTime>,
    current: u16,
}

impl AdaptiveReplication {
    /// A controller spanning `[min, max]` replication with a 30-minute
    /// window; `storm_rate_per_100` defaults to 20 losses/hour per 100
    /// nodes (a 5 %-of-pool-per-15-min preemption storm).
    pub fn new(min_replication: u16, max_replication: u16) -> Self {
        assert!(min_replication >= 1 && max_replication >= min_replication);
        AdaptiveReplication {
            min_replication,
            max_replication,
            window: SimDuration::from_mins(30),
            storm_rate_per_100: 20.0,
            losses: VecDeque::new(),
            current: min_replication,
        }
    }

    /// Record one node loss.
    pub fn note_loss(&mut self, now: SimTime) {
        self.losses.push_back(now);
        self.trim(now);
    }

    fn trim(&mut self, now: SimTime) {
        let cutoff = cutoff_time(now, self.window);
        while self.losses.front().is_some_and(|&t| t < cutoff) {
            self.losses.pop_front();
        }
    }

    /// Losses currently inside the window.
    pub fn losses_in_window(&self) -> usize {
        self.losses.len()
    }

    /// Recompute the recommended factor given the current pool size.
    /// Returns `Some(new_factor)` when it changed.
    pub fn update(&mut self, now: SimTime, pool_size: usize) -> Option<u16> {
        self.trim(now);
        if pool_size == 0 {
            return None;
        }
        let hours = self.window.as_secs_f64() / 3600.0;
        let rate = self.losses.len() as f64 / hours; // losses/hour
        let normalised = rate * 100.0 / pool_size as f64;
        let span = (self.max_replication - self.min_replication) as f64;
        let frac = (normalised / self.storm_rate_per_100).clamp(0.0, 1.0);
        let target = self.min_replication + (span * frac).round() as u16;
        if target != self.current {
            self.current = target;
            Some(target)
        } else {
            None
        }
    }

    /// The factor currently recommended.
    pub fn current(&self) -> u16 {
        self.current
    }
}

/// `now - window`, saturating at zero.
fn cutoff_time(now: SimTime, window: SimDuration) -> SimTime {
    SimTime::from_millis(now.as_millis().saturating_sub(window.as_millis()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_grid_stays_at_floor() {
        let mut c = AdaptiveReplication::new(3, 10);
        assert_eq!(c.current(), 3);
        assert_eq!(c.update(SimTime::from_secs(600), 100), None);
        assert_eq!(c.current(), 3);
    }

    #[test]
    fn storm_raises_to_ceiling() {
        let mut c = AdaptiveReplication::new(3, 10);
        // 20 losses in 30 min on a 100-node pool = 40/h = 2× storm rate.
        for i in 0..20 {
            c.note_loss(SimTime::from_secs(i * 60));
        }
        let new = c.update(SimTime::from_secs(20 * 60), 100);
        assert_eq!(new, Some(10));
        assert_eq!(c.current(), 10);
    }

    #[test]
    fn intermediate_rates_interpolate() {
        let mut c = AdaptiveReplication::new(3, 10);
        // 5 losses in the window on 100 nodes = 10/h = half the storm
        // rate → roughly the midpoint factor.
        for i in 0..5 {
            c.note_loss(SimTime::from_secs(i * 60));
        }
        let new = c.update(SimTime::from_secs(10 * 60), 100).unwrap();
        assert!((6..=8).contains(&new), "got {new}");
    }

    #[test]
    fn old_losses_age_out() {
        let mut c = AdaptiveReplication::new(3, 10);
        for i in 0..20 {
            c.note_loss(SimTime::from_secs(i * 10));
        }
        assert_eq!(c.update(SimTime::from_secs(300), 100), Some(10));
        // Two hours later the window is empty: back to the floor.
        assert_eq!(c.update(SimTime::from_secs(2 * 3600 + 300), 100), Some(3));
        assert_eq!(c.losses_in_window(), 0);
    }

    #[test]
    fn small_pools_normalise_up() {
        // 3 losses on a 10-node pool is a storm; the same 3 losses on a
        // 1000-node pool is noise.
        let mut small = AdaptiveReplication::new(3, 10);
        let mut big = AdaptiveReplication::new(3, 10);
        for i in 0..3 {
            small.note_loss(SimTime::from_secs(i * 60));
            big.note_loss(SimTime::from_secs(i * 60));
        }
        let s = small.update(SimTime::from_secs(240), 10).unwrap_or(3);
        let b = big.update(SimTime::from_secs(240), 1000).unwrap_or(3);
        assert!(s > b, "small pool should react harder: {s} vs {b}");
    }

    #[test]
    fn update_reports_only_changes() {
        let mut c = AdaptiveReplication::new(3, 10);
        for i in 0..20 {
            c.note_loss(SimTime::from_secs(i * 60));
        }
        assert!(c.update(SimTime::from_secs(1300), 100).is_some());
        assert!(c.update(SimTime::from_secs(1310), 100).is_none());
    }
}
