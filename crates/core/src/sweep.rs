//! Parallel multi-run harness.
//!
//! Every simulation run is independent (its own RNG streams, its own
//! world), so parameter sweeps — Figure 4 needs 12 pool sizes × 3 seeds —
//! are embarrassingly parallel. Runs execute on crossbeam scoped threads;
//! results land in submission order regardless of completion order.

use crate::config::ClusterConfig;
use crate::driver::{run_workload, RunResult};
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use parking_lot::Mutex;

/// One sweep entry: a config plus the workload seed to replay.
#[derive(Clone)]
pub struct SweepPoint {
    /// Cluster configuration.
    pub cfg: ClusterConfig,
    /// Workload schedule seed.
    pub workload_seed: u64,
}

/// One sweep entry with an explicit schedule (HOD-style single-job runs).
#[derive(Clone)]
pub struct SchedulePoint {
    /// Cluster configuration.
    pub cfg: ClusterConfig,
    /// The exact schedule to replay.
    pub schedule: SubmissionSchedule,
}

/// Run all `points`, `threads`-wide, preserving input order.
pub fn run_sweep(points: Vec<SweepPoint>, horizon: SimDuration, threads: usize) -> Vec<RunResult> {
    let points = points
        .into_iter()
        .map(|p| SchedulePoint {
            cfg: p.cfg,
            schedule: SubmissionSchedule::facebook_truncated(p.workload_seed),
        })
        .collect();
    run_sweep_schedules(points, horizon, threads)
}

/// Run explicit `(config, schedule)` pairs, `threads`-wide, preserving
/// input order.
pub fn run_sweep_schedules(
    points: Vec<SchedulePoint>,
    horizon: SimDuration,
    threads: usize,
) -> Vec<RunResult> {
    let threads = threads.max(1);
    let n = points.len();
    let results: Mutex<Vec<Option<RunResult>>> = Mutex::new((0..n).map(|_| None).collect());
    let work: Mutex<std::vec::IntoIter<(usize, SchedulePoint)>> =
        Mutex::new(points.into_iter().enumerate().collect::<Vec<_>>().into_iter());

    crossbeam::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let item = { work.lock().next() };
                let Some((idx, point)) = item else { break };
                let result = run_workload(point.cfg, &point.schedule, horizon);
                results.lock()[idx] = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("missing sweep result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    #[test]
    fn sweep_preserves_order_and_runs_parallel() {
        // Two tiny dedicated runs with different seeds.
        let points = vec![
            SweepPoint {
                cfg: ClusterConfig::dedicated(1).named("a"),
                workload_seed: 900,
            },
            SweepPoint {
                cfg: ClusterConfig::dedicated(2).named("b"),
                workload_seed: 900,
            },
        ];
        // Tiny workload: replace the schedule inside run via seed — the
        // full facebook schedule is heavy for a unit test, so this test
        // only checks ordering using a short horizon.
        let results = run_sweep(points, SimDuration::from_secs(120), 2);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "a");
        assert_eq!(results[1].name, "b");
    }
}
