//! Cluster configuration and the paper's two reference systems.

use hog_chaos::FaultPlan;
use hog_grid::{ChurnModel, ElasticConfig, GridParams, SiteConfig};
use hog_hdfs::HdfsConfig;
use hog_mapreduce::{MrParams, SchedPolicy};
use hog_net::NetParams;
use hog_obs::{ObsOptions, TraceMode};
use hog_sim_core::units::GIB;
use hog_sim_core::SimDuration;
use hog_workload::{LoadgenParams, StragglerMix};

/// Which block placement policy the namenode uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementKind {
    /// HOG's site-aware policy (§III-B.1).
    SiteAware,
    /// Stock Hadoop rack-aware placement (dedicated cluster).
    RackAware,
    /// Topology-oblivious random placement (ablation X7).
    RackOblivious,
    /// MOON-style: first replica pinned to the named (dedicated) site.
    AnchorFirst {
        /// Name of the anchor site in the resource config.
        site_name: String,
    },
}

/// Where worker nodes come from.
#[derive(Clone, Debug)]
pub enum ResourceConfig {
    /// Opportunistic glideins from the grid (HOG).
    Grid {
        /// Global grid parameters.
        params: GridParams,
        /// Participating sites.
        sites: Vec<SiteConfig>,
        /// Pool size to form before the workload starts (the paper's
        /// x-axis in Figure 4).
        target_nodes: usize,
        /// `(map, reduce)` slots per glidein — `(1, 1)` in the paper,
        /// since each glidein gets one core.
        slots: (u8, u8),
    },
    /// A fixed set of dedicated nodes in one site (Table III).
    Fixed {
        /// Site name for the topology.
        site_name: String,
        /// DNS domain.
        domain: String,
        /// `(map_slots, reduce_slots)` per node, one entry per node.
        nodes: Vec<(u8, u8)>,
    },
}

impl ResourceConfig {
    /// Number of workers this resource layer aims to provide.
    pub fn target_nodes(&self) -> usize {
        match self {
            ResourceConfig::Grid { target_nodes, .. } => *target_nodes,
            ResourceConfig::Fixed { nodes, .. } => nodes.len(),
        }
    }
}

/// The abandoned-datanode failure mode (§IV-D.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZombieConfig {
    /// Whether preemptions can leave zombie daemons behind (HOG's *first
    /// iteration*, before the process-tree fix).
    pub enabled: bool,
    /// Probability that a preemption double-forks into a zombie.
    pub probability: f64,
}

impl ZombieConfig {
    /// The fixed HOG: preemptions kill the whole process tree.
    pub fn off() -> Self {
        ZombieConfig {
            enabled: false,
            probability: 0.0,
        }
    }

    /// First-iteration HOG: `p` of preemptions leave zombies.
    pub fn on(p: f64) -> Self {
        ZombieConfig {
            enabled: true,
            probability: p,
        }
    }
}

/// Chaos engineering knobs (hog-chaos): scripted fault injection, runtime
/// invariant auditing and the livelock watchdog. Everything defaults to
/// *off* so ordinary runs are byte-identical with or without the
/// subsystem compiled in.
#[derive(Clone, Debug, Default)]
pub struct ChaosOptions {
    /// Scripted fault timeline, offsets relative to workload start.
    pub plan: FaultPlan,
    /// Run the cross-layer invariant audit on every master tick; any
    /// violation aborts the run with a structured report.
    pub audit: bool,
    /// Abort the run if no progress is observed for this long (livelock
    /// watchdog window).
    pub watchdog: Option<SimDuration>,
}

impl ChaosOptions {
    /// Whether any part of the subsystem is active.
    pub fn active(&self) -> bool {
        !self.plan.is_empty() || self.audit || self.watchdog.is_some()
    }
}

/// Master failover: periodic checkpointing of the Namenode+JobTracker
/// stack plus standby promotion after a crash. `None` (the default)
/// reproduces the paper's single-master deployment — a `MasterCrash`
/// fault is then recorded and ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailoverConfig {
    /// How often the active master serializes a checkpoint (fsimage +
    /// job ledger). Mutations since the last checkpoint form the *edit
    /// window* and are lost on a crash. An interval of zero selects
    /// *mirror mode*: the standby tracks every mutation synchronously,
    /// so a crash loses nothing and causes no downtime.
    pub checkpoint_interval: SimDuration,
    /// How long after the crash the standby notices the active master
    /// is gone and promotes itself. During this window heartbeats go
    /// unanswered and client submissions buffer with retry/backoff.
    pub detection_timeout: SimDuration,
}

impl FailoverConfig {
    /// Checkpoint every `interval` with a 30 s detection timeout
    /// (matching the paper's 30 s dead-node detection).
    pub fn every(interval: SimDuration) -> Self {
        FailoverConfig {
            checkpoint_interval: interval,
            detection_timeout: SimDuration::from_secs(30),
        }
    }

    /// Mirror mode: synchronous standby, zero-loss, zero-downtime.
    pub fn mirror() -> Self {
        FailoverConfig::every(SimDuration::ZERO)
    }

    /// Whether the standby mirrors every mutation synchronously.
    pub fn is_mirror(&self) -> bool {
        self.checkpoint_interval == SimDuration::ZERO
    }
}

/// Federation pool membership (hog-fed). A cluster carrying a `PoolRole`
/// runs in *pool mode*: it uploads only the datasets homed in it, fires
/// the submission timeline for its home jobs, and hands every fired
/// submission to the federation's meta-scheduler for routing instead of
/// submitting locally. A 1-pool federation whose single pool homes every
/// job replays byte-identically to the same config without a role.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolRole {
    /// Index of this pool within the federation.
    pub pool_id: usize,
    /// Schedule indices whose datasets live (and whose submission
    /// timeline fires) in this pool. Sorted ascending.
    pub home_jobs: Vec<usize>,
}

impl PoolRole {
    /// Whether schedule index `i` is homed in this pool.
    pub fn is_home(&self, i: usize) -> bool {
        self.home_jobs.binary_search(&i).is_ok()
    }
}

/// Everything needed to build a cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Label for reports.
    pub name: String,
    /// Master RNG seed; every stochastic stream forks from it.
    pub seed: u64,
    /// Network capacities/latencies.
    pub net: NetParams,
    /// HDFS settings.
    pub hdfs: HdfsConfig,
    /// MapReduce settings.
    pub mr: MrParams,
    /// Job cost model.
    pub loadgen: LoadgenParams,
    /// Worker provisioning.
    pub resource: ResourceConfig,
    /// Fraction of `resource.target_nodes` the forming pool may still be
    /// missing when the upload phase starts. `0.0` (the default) demands
    /// the full pool — the paper's behaviour, and byte-identical to
    /// pre-knob builds. Past the paper's scale churn keeps a standing
    /// deficit of roughly `death_rate × acquisition_delay` glideins, so
    /// strict equality is unreachable and a small grace is required.
    pub formation_grace: f64,
    /// Zombie-datanode mode.
    pub zombie: ZombieConfig,
    /// Placement policy.
    pub placement: PlacementKind,
    /// Input blocks staged concurrently during upload.
    pub upload_parallel: usize,
    /// Delay between a task failing on a zombie node and the failure
    /// report reaching the JobTracker (models the doomed attempt's brief
    /// lifetime).
    pub zombie_fail_delay: SimDuration,
    /// Retry backoff for shuffle fetches aimed at unusable sources.
    pub fetch_retry_delay: SimDuration,
    /// Adaptive replication (§VI future work, extension X9): when set to
    /// `(min, max)`, a controller scales the replication factor with the
    /// observed node-loss rate instead of pinning it at `hdfs.replication`.
    pub adaptive_replication: Option<(u16, u16)>,
    /// Fault injection / auditing / watchdog (hog-chaos); inert by
    /// default.
    pub chaos: ChaosOptions,
    /// Structured tracing and the metrics registry (hog-obs); inert by
    /// default — untraced runs build no events.
    pub obs: ObsOptions,
    /// Elastic pool controller (hog-grid): when set, a feedback loop on
    /// the master tick resizes the glidein pool between the configured
    /// bounds instead of holding it at `resource.target_nodes`. `None`
    /// (the default) leaves every run byte-identical to a static pool.
    pub elastic: Option<ElasticConfig>,
    /// Master failover (checkpointed Namenode/JobTracker recovery).
    /// `None` (the default) keeps the single-master behaviour
    /// byte-identical to pre-failover builds.
    pub failover: Option<FailoverConfig>,
    /// Federation pool membership (hog-fed). `None` (the default) is the
    /// ordinary standalone cluster.
    pub pool: Option<PoolRole>,
    /// Heavy-tailed straggler mix layered onto task CPU times
    /// (hog-workload). Draws come from a dedicated RNG stream, so `None`
    /// (the default) keeps every run byte-identical to pre-straggler
    /// builds.
    pub straggler: Option<StragglerMix>,
}

impl ClusterConfig {
    /// The HOG system at a given pool size: five public-IP OSG sites,
    /// replication 10, 30 s dead-node detection, site-aware placement,
    /// zombie fix on, 1 map + 1 reduce slot per glidein.
    pub fn hog(target_nodes: usize, seed: u64) -> Self {
        let hdfs = HdfsConfig::hog().with_capacity(120 * GIB);
        let loadgen = LoadgenParams {
            output_replication: hdfs.replication,
            ..LoadgenParams::calibrated()
        };
        // Within the paper's five-site capacity the pool forms completely
        // (its exact behaviour); past it, preemption churn makes a full
        // simultaneous pool unreachable, so formation tolerates a 1%
        // deficit — far above the expected standing deficit at 10k nodes.
        let paper_capacity: usize = hog_grid::config::paper_sites()
            .iter()
            .map(|s| s.max_slots)
            .sum();
        let formation_grace = if target_nodes > paper_capacity {
            0.01
        } else {
            0.0
        };
        ClusterConfig {
            name: format!("hog-{target_nodes}"),
            seed,
            net: NetParams::grid_default(),
            hdfs,
            mr: MrParams::hog(),
            loadgen,
            resource: ResourceConfig::Grid {
                params: GridParams::default(),
                // Exactly the paper's five sites through 1101 nodes;
                // synthetic OSG sites appear only past the paper's scale.
                sites: hog_grid::config::scaled_sites(target_nodes),
                target_nodes,
                slots: (1, 1),
            },
            formation_grace,
            zombie: ZombieConfig::off(),
            placement: PlacementKind::SiteAware,
            upload_parallel: 8,
            zombie_fail_delay: SimDuration::from_secs(2),
            fetch_retry_delay: SimDuration::from_secs(15),
            adaptive_replication: None,
            chaos: ChaosOptions::default(),
            obs: ObsOptions::default(),
            elastic: None,
            failover: None,
            pool: None,
            straggler: None,
        }
    }

    /// The dedicated cluster of Table III: 20 nodes with 2 dual-core
    /// Opteron-275s (4 map slots, 1 reduce slot) plus 10 nodes with 2
    /// single-core Opterons (2 map slots, 1 reduce slot), 1 Gbps
    /// Ethernet, stock Hadoop 0.20 (replication 3, rack awareness).
    pub fn dedicated(seed: u64) -> Self {
        let hdfs = HdfsConfig::stock();
        let loadgen = LoadgenParams {
            output_replication: hdfs.replication,
            ..LoadgenParams::calibrated()
        };
        let mut nodes = vec![(4u8, 1u8); 20];
        nodes.extend(vec![(2u8, 1u8); 10]);
        ClusterConfig {
            name: "dedicated-100-cores".to_string(),
            seed,
            net: NetParams::lan_default(),
            hdfs,
            mr: MrParams::stock(),
            loadgen,
            resource: ResourceConfig::Fixed {
                site_name: "LOCAL".to_string(),
                domain: "local.unl.edu".to_string(),
                nodes,
            },
            formation_grace: 0.0,
            zombie: ZombieConfig::off(),
            placement: PlacementKind::RackAware,
            upload_parallel: 8,
            zombie_fail_delay: SimDuration::from_secs(2),
            fetch_retry_delay: SimDuration::from_secs(15),
            adaptive_replication: None,
            chaos: ChaosOptions::default(),
            obs: ObsOptions::default(),
            elastic: None,
            failover: None,
            pool: None,
            straggler: None,
        }
    }

    /// Override every site's mean node lifetime (churn-pressure knob used
    /// by the Figure 5 "unstable" run and several ablations).
    pub fn with_mean_lifetime(mut self, mean: SimDuration) -> Self {
        if let ResourceConfig::Grid { sites, .. } = &mut self.resource {
            for s in sites.iter_mut() {
                *s = s.clone().with_mean_lifetime(mean);
            }
        }
        self
    }

    /// Replace every site's preemption generator with the given churn
    /// model (hog-grid). The default [`ChurnModel::Exponential`] is the
    /// legacy memoryless process; [`ChurnModel::Calibrated`] is the
    /// heavy-tailed diurnal model.
    pub fn with_churn_model(mut self, churn: ChurnModel) -> Self {
        if let ResourceConfig::Grid { sites, .. } = &mut self.resource {
            for s in sites.iter_mut() {
                *s = s.clone().with_churn(churn);
            }
        }
        self
    }

    /// Switch every site to its OSG-calibrated churn profile: per-site
    /// heavy-tailed preemption inter-arrivals with a diurnal rate curve
    /// ([`hog_grid::config::SiteConfig::calibrated`]).
    pub fn with_calibrated_churn(mut self) -> Self {
        if let ResourceConfig::Grid { sites, .. } = &mut self.resource {
            for s in sites.iter_mut() {
                *s = s.clone().calibrated();
            }
        }
        self
    }

    /// Like [`Self::with_calibrated_churn`], but start the simulated day
    /// at `start_hour` (0–24) instead of midnight, so a short workload
    /// window can be replayed inside the campuses' diurnal preemption
    /// wave ([`hog_grid::config::SiteConfig::calibrated_at`]).
    pub fn with_calibrated_churn_at(mut self, start_hour: f64) -> Self {
        if let ResourceConfig::Grid { sites, .. } = &mut self.resource {
            for s in sites.iter_mut() {
                *s = s.clone().calibrated_at(start_hour);
            }
        }
        self
    }

    /// Layer the heavy-tailed straggler mix onto every task's CPU time
    /// (hog-workload).
    pub fn with_stragglers(mut self, mix: StragglerMix) -> Self {
        self.straggler = Some(mix);
        self
    }

    /// Override the replication factor (input and output alike).
    pub fn with_replication(mut self, r: u16) -> Self {
        self.hdfs.replication = r;
        self.loadgen.output_replication = r;
        self
    }

    /// Override both dead-node timeouts (namenode + jobtracker), ablation
    /// X1.
    pub fn with_dead_timeout(mut self, t: SimDuration) -> Self {
        self.hdfs.dead_node_timeout = t;
        self.mr.tracker_dead_timeout = t;
        self
    }

    /// Override the placement policy (ablation X7).
    pub fn with_placement(mut self, p: PlacementKind) -> Self {
        self.placement = p;
        self
    }

    /// Enable zombie datanodes with probability `p`, and optionally the
    /// disk-check fix (X3).
    pub fn with_zombies(mut self, p: f64, disk_check: bool) -> Self {
        self.zombie = ZombieConfig::on(p);
        self.hdfs.disk_check_interval = disk_check.then(|| SimDuration::from_secs(180));
        self
    }

    /// Multi-copy task execution (X6): run every task as `k` eager copies.
    pub fn with_task_copies(mut self, k: u8, eager: bool) -> Self {
        self.mr = self.mr.with_task_copies(k, eager);
        self
    }

    /// Select the slot-assignment policy (hog-sched): FIFO (stock
    /// Hadoop, the default), fair sharing with delay scheduling, or
    /// failure-aware placement.
    pub fn with_scheduler(mut self, policy: SchedPolicy) -> Self {
        self.mr = self.mr.with_scheduler(policy);
        self
    }

    /// Enable adaptive replication between `min` and `max` (extension X9,
    /// paper §VI).
    pub fn with_adaptive_replication(mut self, min: u16, max: u16) -> Self {
        self.adaptive_replication = Some((min, max));
        self
    }

    /// Arm the Trua-style per-block availability policy (X17): each
    /// block's replication target tracks the failure risk of the sites
    /// holding it, its read heat, and the sites' churn profiles, instead
    /// of the flat factor. Also turns on fair replication dispatch (see
    /// [`hog_hdfs::HdfsConfig::with_availability`]).
    pub fn with_availability_policy(mut self, p: hog_hdfs::AvailabilityPolicy) -> Self {
        self.hdfs = self.hdfs.with_availability(p);
        self
    }

    /// Inject a scripted fault timeline (hog-chaos).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.chaos.plan = plan;
        self
    }

    /// Toggle the runtime invariant audit (hog-chaos).
    pub fn with_audit(mut self, on: bool) -> Self {
        self.chaos.audit = on;
        self
    }

    /// Arm the livelock watchdog with a no-progress window (hog-chaos).
    pub fn with_watchdog(mut self, window: SimDuration) -> Self {
        self.chaos.watchdog = Some(window);
        self
    }

    /// Set the trace mode (hog-obs): `Ring(cap)` keeps the last `cap`
    /// events (flight recorder), `Full` retains everything for export.
    pub fn with_tracing(mut self, mode: TraceMode) -> Self {
        self.obs.trace = mode;
        self
    }

    /// Arm the flight recorder: a bounded ring of the last `cap` trace
    /// events, appended to chaos failure dumps.
    pub fn with_flight_recorder(mut self, cap: usize) -> Self {
        self.obs.trace = TraceMode::Ring(cap);
        self
    }

    /// Enable the per-layer metrics registry, snapshotted every master
    /// tick (hog-obs).
    pub fn with_metrics(mut self) -> Self {
        self.obs.metrics = true;
        self
    }

    /// Close the glidein feedback loop: resize the pool between `min`
    /// and `max` nodes based on the observed task backlog (default
    /// controller tuning). The initial pool target stays whatever the
    /// resource config says; the controller takes over once the
    /// workload is running.
    pub fn with_elastic(mut self, min: usize, max: usize) -> Self {
        self.elastic = Some(ElasticConfig::new(min, max));
        self
    }

    /// Like [`ClusterConfig::with_elastic`], but with full control over
    /// the controller tuning (benchmarks and ablations).
    pub fn with_elastic_config(mut self, cfg: ElasticConfig) -> Self {
        self.elastic = Some(cfg);
        self
    }

    /// Arm master failover: checkpoint the Namenode+JobTracker stack
    /// every `interval` and promote a standby `detection` after a
    /// `MasterCrash`. `interval == ZERO` selects mirror mode (a
    /// synchronous standby that loses nothing and promotes instantly).
    pub fn with_failover(mut self, interval: SimDuration, detection: SimDuration) -> Self {
        self.failover = Some(FailoverConfig {
            checkpoint_interval: interval,
            detection_timeout: detection,
        });
        self
    }

    /// Rename (report labelling).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hog_preset_matches_paper() {
        let c = ClusterConfig::hog(100, 1);
        assert_eq!(c.hdfs.replication, 10);
        assert_eq!(c.loadgen.output_replication, 10);
        assert_eq!(c.hdfs.dead_node_timeout, SimDuration::from_secs(30));
        assert_eq!(c.placement, PlacementKind::SiteAware);
        match &c.resource {
            ResourceConfig::Grid {
                sites,
                target_nodes,
                slots,
                ..
            } => {
                assert_eq!(sites.len(), 5);
                assert_eq!(*target_nodes, 100);
                assert_eq!(*slots, (1, 1));
            }
            _ => panic!("HOG runs on the grid"),
        }
    }

    #[test]
    fn dedicated_preset_matches_table3() {
        let c = ClusterConfig::dedicated(1);
        assert_eq!(c.hdfs.replication, 3);
        assert_eq!(c.placement, PlacementKind::RackAware);
        match &c.resource {
            ResourceConfig::Fixed { nodes, .. } => {
                assert_eq!(nodes.len(), 30);
                let map_slots: u32 = nodes.iter().map(|&(m, _)| m as u32).sum();
                let reduce_slots: u32 = nodes.iter().map(|&(_, r)| r as u32).sum();
                assert_eq!(map_slots, 100, "1 map slot per core, 100 cores");
                assert_eq!(reduce_slots, 30, "1 reduce slot per node");
            }
            _ => panic!("dedicated cluster is fixed"),
        }
        assert_eq!(c.resource.target_nodes(), 30);
    }

    #[test]
    fn builders_cascade() {
        let c = ClusterConfig::hog(50, 2)
            .with_replication(5)
            .with_dead_timeout(SimDuration::from_secs(600))
            .with_placement(PlacementKind::RackOblivious)
            .with_zombies(0.5, true)
            .named("x");
        assert_eq!(c.hdfs.replication, 5);
        assert_eq!(c.loadgen.output_replication, 5);
        assert_eq!(c.mr.tracker_dead_timeout, SimDuration::from_secs(600));
        assert_eq!(c.placement, PlacementKind::RackOblivious);
        assert!(c.zombie.enabled);
        assert!(c.hdfs.disk_check_interval.is_some());
        assert_eq!(c.name, "x");
    }

    #[test]
    fn availability_policy_defaults_off_and_builder_arms_it() {
        let plain = ClusterConfig::hog(100, 1);
        assert!(plain.hdfs.availability.is_none());
        assert!(!plain.hdfs.repl_fairness);
        let armed = plain.with_availability_policy(hog_hdfs::AvailabilityPolicy::trua_default());
        assert!(armed.hdfs.availability.is_some());
        assert!(armed.hdfs.repl_fairness, "policy arms fair dispatch too");
    }

    #[test]
    fn churn_and_straggler_default_off_and_builders_arm_them() {
        let plain = ClusterConfig::hog(100, 1);
        assert!(plain.straggler.is_none(), "stragglers must default off");
        match &plain.resource {
            ResourceConfig::Grid { sites, .. } => {
                assert!(sites
                    .iter()
                    .all(|s| s.churn == ChurnModel::Exponential));
            }
            _ => panic!("HOG runs on the grid"),
        }
        let armed = plain
            .with_calibrated_churn()
            .with_stragglers(StragglerMix::osg_default());
        assert!(armed.straggler.is_some());
        match &armed.resource {
            ResourceConfig::Grid { sites, .. } => {
                assert!(sites
                    .iter()
                    .all(|s| matches!(s.churn, ChurnModel::Calibrated(_))));
            }
            _ => unreachable!(),
        }
        // with_churn_model flips everything back.
        let back = armed.with_churn_model(ChurnModel::Exponential);
        match &back.resource {
            ResourceConfig::Grid { sites, .. } => {
                assert!(sites
                    .iter()
                    .all(|s| s.churn == ChurnModel::Exponential));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn chaos_defaults_off_and_builders_arm_it() {
        let plain = ClusterConfig::hog(10, 1);
        assert!(!plain.chaos.active(), "chaos must be inert by default");
        assert!(!ClusterConfig::dedicated(1).chaos.active());
        let armed = plain
            .with_fault_plan(FaultPlan::new().at(
                SimDuration::from_secs(60),
                hog_chaos::Fault::ZombieOutbreak { count: 2 },
            ))
            .with_audit(true)
            .with_watchdog(SimDuration::from_secs(1800));
        assert!(armed.chaos.active());
        assert_eq!(armed.chaos.plan.len(), 1);
        assert!(armed.chaos.audit);
        assert_eq!(armed.chaos.watchdog, Some(SimDuration::from_secs(1800)));
    }

    #[test]
    fn obs_defaults_off_and_builders_arm_it() {
        let plain = ClusterConfig::hog(10, 1);
        assert!(
            !plain.obs.active(),
            "observability must be inert by default"
        );
        assert!(!ClusterConfig::dedicated(1).obs.active());
        let traced = plain.clone().with_tracing(TraceMode::Full).with_metrics();
        assert!(traced.obs.active());
        assert_eq!(traced.obs.trace, TraceMode::Full);
        assert!(traced.obs.metrics);
        let ringed = plain.with_flight_recorder(64);
        assert_eq!(ringed.obs.trace, TraceMode::Ring(64));
        assert!(!ringed.obs.metrics);
    }
}
