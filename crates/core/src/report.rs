//! Plain-text rendering for tables, figures and CSV export.

use hog_sim_core::metrics::StepSeries;
use hog_sim_core::SimTime;
use std::fmt::Write as _;

/// A simple left-aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[c]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// ASCII line chart of a step series (one value column over time), for
/// regenerating Figure 5 in a terminal.
pub fn ascii_series(series: &StepSeries, from: SimTime, to: SimTime, width: usize, height: usize) -> String {
    let pts = series.resample(from, to, width);
    if pts.is_empty() {
        return String::from("(empty series)\n");
    }
    let max = pts.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max).max(1.0);
    let min = 0.0f64;
    let mut grid = vec![vec![' '; width]; height];
    for (x, &(_, v)) in pts.iter().enumerate() {
        let frac = ((v - min) / (max - min)).clamp(0.0, 1.0);
        let y = ((height - 1) as f64 * frac).round() as usize;
        grid[height - 1 - y][x] = '*';
    }
    let mut out = String::new();
    let _ = writeln!(out, "{max:>8.0} ┐");
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "         │{line}");
    }
    let _ = writeln!(
        out,
        "{:>8.0} └{}",
        min,
        "─".repeat(width)
    );
    let _ = writeln!(
        out,
        "          {:<10} … {:>10}",
        format!("{:.0}s", from.as_secs_f64()),
        format!("{:.0}s", to.as_secs_f64())
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["bin", "jobs"]);
        t.row(&["1".into(), "38".into()]);
        t.row(&["2".into(), "16".into()]);
        let s = t.render();
        assert!(s.contains("bin"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn ascii_chart_has_dimensions() {
        let mut s = StepSeries::new();
        s.record(SimTime::ZERO, 10.0);
        s.record(SimTime::from_secs(50), 55.0);
        let art = ascii_series(&s, SimTime::ZERO, SimTime::from_secs(100), 40, 10);
        assert!(art.lines().count() >= 12);
        assert!(art.contains('*'));
    }
}
