//! The master stack: Namenode + JobTracker behind an explicit lifecycle.
//!
//! Historically the mediator owned the two master state machines as bare
//! fields. This module puts them behind [`MasterStack`] — a trait with an
//! explicit *checkpoint / crash / promote* lifecycle — so the mediator
//! talks to "the masters" as one unit. [`SingleMasterStack`] is the only
//! implementation today (one active master, one cold standby restored
//! from the latest checkpoint); the trait is the stepping stone to
//! federated namespaces and hot-standby pairs.
//!
//! # Checkpointing
//!
//! With a [`FailoverConfig`] armed, the active master serializes its
//! whole state every `checkpoint_interval`: the namespace + block map
//! (fsimage, [`hog_hdfs::Namenode::export_fsimage`]) and the job/task
//! ledger ([`hog_mapreduce::JobTracker::export_ledger`]). In the
//! simulation the checkpoint is a deep clone of both state machines;
//! the deterministic export strings exist so tests can prove the clone
//! is bit-faithful ([`MasterCheckpoint::fingerprint`]). Mutations since
//! the last checkpoint form the *edit window* and are lost on a crash.
//!
//! An interval of zero is *mirror mode*: the standby applies every
//! mutation synchronously, so a crash loses nothing, causes no downtime,
//! and the run is fingerprint-identical to a crash-free one.
//!
//! # Crash and promotion
//!
//! A [`hog_chaos::Fault::MasterCrash`] kills the active master. The
//! stack goes [`MasterStatus::Down`]: heartbeats go unanswered, no
//! scheduling or death detection happens, client submissions buffer.
//! After `detection_timeout` the standby promotes: the checkpoint clones
//! are swapped in as the live masters and the *ghosts* (the crashed
//! masters' final state) are handed back to the mediator, which uses
//! them as ground truth for reconciliation — block-report replay,
//! tracker re-registration, and requeueing work the restored ledger
//! never heard about. The recovery protocol itself lives in
//! `cluster::Cluster::on_master_promote`; this module only manages the
//! lifecycle and the accounting.

use crate::config::FailoverConfig;
use hog_hdfs::Namenode;
use hog_mapreduce::JobTracker;
use hog_sim_core::{SimDuration, SimTime};

/// Lifecycle state of the master stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterStatus {
    /// The active master is serving.
    Active,
    /// The active master crashed at `since`; the standby has not
    /// promoted yet. Heartbeats are dropped, submissions buffer.
    Down {
        /// When the crash happened.
        since: SimTime,
    },
}

/// Failover accounting, threaded into [`crate::driver::RunResult`] and
/// the benchmark reports.
#[derive(Clone, Debug, Default)]
pub struct FailoverStats {
    /// `MasterCrash` faults that actually took the stack down.
    pub crashes: u64,
    /// Standby promotions completed.
    pub promotions: u64,
    /// Checkpoint timestamps, in order (empty in mirror mode).
    pub checkpoints: Vec<SimTime>,
    /// Crash → promotion gap of the most recent failover.
    pub last_recovery: SimDuration,
    /// Sum of all crash → promotion gaps.
    pub total_recovery: SimDuration,
    /// Edit window lost in the most recent failover (crash time minus
    /// last checkpoint time; zero in mirror mode).
    pub last_lost_window: SimDuration,
    /// Sum of all lost edit windows.
    pub total_lost_window: SimDuration,
    /// Trackers/datanodes re-registered during promotions (the
    /// re-registration storm size).
    pub reregistrations: u64,
    /// Jobs whose submission was lost with the crashed master and
    /// resubmitted by the client retry path.
    pub resubmissions: u64,
    /// Client submissions that arrived during downtime and were
    /// buffered with retry/backoff instead of failing.
    pub buffered_submissions: u64,
}

/// A point-in-time snapshot of both masters.
#[derive(Clone)]
pub struct MasterCheckpoint {
    /// When the checkpoint was taken.
    pub taken_at: SimTime,
    /// Deep copy of the namenode (namespace + block map + liveness).
    pub nn: Namenode,
    /// Deep copy of the jobtracker (job/task ledger + tracker table).
    pub jt: JobTracker,
}

impl MasterCheckpoint {
    /// FNV-1a over the deterministic fsimage + ledger exports. Two
    /// checkpoints with the same fingerprint hold bit-identical master
    /// state; tests use this to prove `restore(checkpoint(s)) == s`.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [self.nn.export_fsimage(), self.jt.export_ledger()] {
            for b in part.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }
}

/// What [`MasterStack::promote`] hands back: the crashed masters' final
/// state ("ghosts"), used by the mediator as physical ground truth
/// during reconciliation, plus when the restored state was captured.
pub struct PromotedMasters {
    /// The crashed namenode's final state.
    pub ghost_nn: Namenode,
    /// The crashed jobtracker's final state.
    pub ghost_jt: JobTracker,
    /// When the checkpoint now serving as live state was taken.
    pub checkpoint_at: SimTime,
}

/// The Namenode + JobTracker stack with an explicit lifecycle. See the
/// module docs for the protocol.
pub trait MasterStack {
    /// The armed failover configuration, if any.
    fn failover(&self) -> Option<FailoverConfig>;

    /// Current lifecycle state.
    fn status(&self) -> MasterStatus;

    /// Whether the stack is down (crashed, awaiting promotion).
    fn is_down(&self) -> bool {
        matches!(self.status(), MasterStatus::Down { .. })
    }

    /// Whether a periodic checkpoint is due at `now`.
    fn checkpoint_due(&self, now: SimTime) -> bool;

    /// Take a checkpoint at `now` (deep-clone both masters).
    fn take_checkpoint(&mut self, now: SimTime);

    /// The active master host dies. Returns `true` if the stack actually
    /// went down (a promotion must be scheduled); `false` if the fault
    /// was absorbed — no failover configured (recorded and ignored, the
    /// paper's single-master deployment), mirror mode (the synchronous
    /// standby takes over with zero downtime), or already down.
    fn crash(&mut self, now: SimTime) -> bool;

    /// The standby's detection timeout fired: swap the checkpoint in as
    /// the live masters. Returns the crashed masters' final state for
    /// reconciliation, or `None` if the stack was not down (stale
    /// promotion event — ignore).
    fn promote(&mut self, now: SimTime) -> Option<PromotedMasters>;

    /// Failover accounting so far.
    fn stats(&self) -> &FailoverStats;
}

/// One active master, one standby restored from the latest periodic
/// checkpoint. The only [`MasterStack`] today.
pub struct SingleMasterStack {
    /// The live namenode. Public: the mediator drives it directly on
    /// every event, exactly as it drove the bare field before.
    pub nn: Namenode,
    /// The live jobtracker.
    pub jt: JobTracker,
    /// Failover accounting.
    pub stats: FailoverStats,
    cfg: Option<FailoverConfig>,
    status: MasterStatus,
    checkpoint: Option<MasterCheckpoint>,
}

impl SingleMasterStack {
    /// Wrap freshly-built masters. `cfg == None` reproduces the paper's
    /// single-master deployment bit-for-bit.
    pub fn new(nn: Namenode, jt: JobTracker, cfg: Option<FailoverConfig>) -> Self {
        SingleMasterStack {
            nn,
            jt,
            stats: FailoverStats::default(),
            cfg,
            status: MasterStatus::Active,
            checkpoint: None,
        }
    }

    /// The latest checkpoint, if one has been taken.
    pub fn checkpoint(&self) -> Option<&MasterCheckpoint> {
        self.checkpoint.as_ref()
    }
}

impl MasterStack for SingleMasterStack {
    fn failover(&self) -> Option<FailoverConfig> {
        self.cfg
    }

    fn status(&self) -> MasterStatus {
        self.status
    }

    fn checkpoint_due(&self, now: SimTime) -> bool {
        let Some(cfg) = self.cfg else { return false };
        if cfg.is_mirror() || self.is_down() {
            return false;
        }
        match &self.checkpoint {
            None => true,
            Some(cp) => now.saturating_since(cp.taken_at) >= cfg.checkpoint_interval,
        }
    }

    fn take_checkpoint(&mut self, now: SimTime) {
        self.checkpoint = Some(MasterCheckpoint {
            taken_at: now,
            nn: self.nn.clone(),
            jt: self.jt.clone(),
        });
        self.stats.checkpoints.push(now);
    }

    fn crash(&mut self, now: SimTime) -> bool {
        let Some(cfg) = self.cfg else {
            // Single-master deployment: nothing to promote. The fault is
            // recorded by the mediator's trace; state is untouched (the
            // paper's real answer was "restart the master by hand").
            return false;
        };
        if self.is_down() {
            return false; // crash-while-down: absorbed by the first one
        }
        if cfg.is_mirror() {
            // The synchronous standby holds an identical copy and takes
            // over within the same heartbeat: zero loss, zero downtime.
            self.stats.crashes += 1;
            self.stats.promotions += 1;
            return false;
        }
        self.stats.crashes += 1;
        self.status = MasterStatus::Down { since: now };
        true
    }

    fn promote(&mut self, now: SimTime) -> Option<PromotedMasters> {
        let MasterStatus::Down { since } = self.status else {
            return None;
        };
        // Without any checkpoint the standby restores empty masters; in
        // practice the mediator takes an initial checkpoint when the
        // workload starts, so this only covers a crash before then.
        let cp = match self.checkpoint.clone() {
            Some(cp) => cp,
            None => MasterCheckpoint {
                taken_at: since,
                nn: self.nn.clone(),
                jt: self.jt.clone(),
            },
        };
        let ghost_nn = std::mem::replace(&mut self.nn, cp.nn);
        let ghost_jt = std::mem::replace(&mut self.jt, cp.jt);
        self.status = MasterStatus::Active;
        self.stats.promotions += 1;
        let recovery = now.saturating_since(since);
        self.stats.last_recovery = recovery;
        self.stats.total_recovery += recovery;
        let lost = since.saturating_since(cp.taken_at);
        self.stats.last_lost_window = lost;
        self.stats.total_lost_window += lost;
        Some(PromotedMasters {
            ghost_nn,
            ghost_jt,
            checkpoint_at: cp.taken_at,
        })
    }

    fn stats(&self) -> &FailoverStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_hdfs::{HdfsConfig, SiteAwarePolicy};
    use hog_mapreduce::MrParams;
    use hog_sim_core::SimRng;

    fn stack(cfg: Option<FailoverConfig>) -> SingleMasterStack {
        let nn = Namenode::new(
            HdfsConfig::hog(),
            Box::new(SiteAwarePolicy),
            SimRng::seed_from_u64(7),
        );
        let jt = JobTracker::new(MrParams::hog(), SimRng::seed_from_u64(8));
        SingleMasterStack::new(nn, jt, cfg)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn no_config_absorbs_crashes() {
        let mut s = stack(None);
        assert!(!s.crash(t(10)));
        assert_eq!(s.status(), MasterStatus::Active);
        assert!(!s.checkpoint_due(t(100)));
        assert!(s.promote(t(40)).is_none());
        assert_eq!(s.stats().crashes, 0);
    }

    #[test]
    fn mirror_mode_has_zero_downtime() {
        let mut s = stack(Some(FailoverConfig::mirror()));
        assert!(!s.checkpoint_due(t(100)), "mirror mode never checkpoints");
        assert!(!s.crash(t(10)), "mirror crash causes no downtime");
        assert_eq!(s.status(), MasterStatus::Active);
        assert_eq!(s.stats().crashes, 1);
        assert_eq!(s.stats().promotions, 1);
        assert_eq!(s.stats().last_recovery, SimDuration::ZERO);
    }

    #[test]
    fn checkpoint_cadence() {
        let mut s = stack(Some(FailoverConfig::every(SimDuration::from_secs(300))));
        assert!(s.checkpoint_due(t(0)), "first checkpoint is due at once");
        s.take_checkpoint(t(0));
        assert!(!s.checkpoint_due(t(299)));
        assert!(s.checkpoint_due(t(300)));
        s.take_checkpoint(t(300));
        assert_eq!(s.stats().checkpoints, vec![t(0), t(300)]);
    }

    #[test]
    fn crash_then_promote_restores_checkpoint_and_accounts() {
        let mut s = stack(Some(FailoverConfig::every(SimDuration::from_secs(300))));
        s.take_checkpoint(t(100));
        let fp = s.checkpoint().unwrap().fingerprint();
        assert!(s.crash(t(250)));
        assert!(s.is_down());
        assert!(!s.crash(t(260)), "crash-while-down is absorbed");
        assert!(!s.checkpoint_due(t(500)), "no checkpoints while down");
        let promoted = s.promote(t(280)).expect("stack was down");
        assert_eq!(promoted.checkpoint_at, t(100));
        assert_eq!(s.status(), MasterStatus::Active);
        assert_eq!(s.stats().crashes, 1);
        assert_eq!(s.stats().promotions, 1);
        assert_eq!(s.stats().last_recovery, SimDuration::from_secs(30));
        assert_eq!(s.stats().last_lost_window, SimDuration::from_secs(150));
        // The restored live state is bit-identical to the checkpoint.
        let live = MasterCheckpoint {
            taken_at: t(100),
            nn: s.nn.clone(),
            jt: s.jt.clone(),
        };
        assert_eq!(live.fingerprint(), fp);
        assert!(s.promote(t(300)).is_none(), "stale promote is a no-op");
    }
}
