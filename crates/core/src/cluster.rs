//! The cluster mediator: owns simulated time and wires grid, HDFS,
//! MapReduce and the network together.
//!
//! A run goes through four phases, mirroring the paper's §IV-A
//! methodology:
//!
//! 1. **Forming** — glidein requests are submitted and the run waits
//!    until the pool reaches the configured size ("we first configure a
//!    given number of nodes that HOG will achieve and wait until HOG
//!    reaches this number");
//! 2. **Uploading** — every job's input file is staged into HDFS
//!    (pipeline writes from the central server; not counted in the
//!    workload response time);
//! 3. **Running** — the submission schedule replays; response time is
//!    measured from the first submission to the last job's completion;
//! 4. **Done**.

use crate::config::{ClusterConfig, PlacementKind, ResourceConfig};
use crate::event::{DoomReason, Event};
use crate::master::{MasterStack, SingleMasterStack};
use hog_chaos::{Auditor, ChaosFailure, Fault, ProgressSig, Watchdog};
use hog_grid::{ElasticController, ElasticDecision, GridModel, GridNote, LossReason, PoolSnapshot};
use hog_hdfs::datanode::DnLiveness;
use hog_hdfs::{
    AvailabilitySnapshot, BlockId, FileId, Namenode, RackAwarePolicy, RackObliviousPolicy,
    ReplOrder, SiteAwarePolicy, SiteRisk,
};
use hog_mapreduce::jobtracker::FailReason;
use hog_mapreduce::{Assignment, AttemptRef, JobId, JobSubmission, JobTracker, JtNote, ReduceStep};
use hog_net::{FlowEnd, FlowId, FlowOutcome, FluidNet, Network, NodeId, Topology};
use hog_obs::{
    render_tail, HistogramId, Layer, MetricId, MetricsRegistry, TraceEvent, TraceLog, Tracer,
};
use hog_sim_core::engine::{Model, Scheduler};
use hog_sim_core::metrics::StepSeries;
use hog_sim_core::units::transfer_secs;
use hog_sim_core::{SimDuration, SimRng, SimTime, Violation};
use hog_workload::{JobSpec, SubmissionSchedule};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// What an in-flight network transfer means.
#[derive(Clone, Debug)]
enum FlowCtx {
    /// A map reading its remote input block.
    MapInput { attempt: AttemptRef },
    /// A reduce shuffle fetch.
    Shuffle { attempt: AttemptRef, order: u64 },
    /// A namenode-ordered replication transfer.
    Repl {
        block: BlockId,
        src: NodeId,
        dst: NodeId,
    },
    /// Writer → first pipeline target of a block write.
    PipeHead { write: u64 },
    /// First target → one further replica of a block write.
    PipeFan { write: u64, target: NodeId },
    /// A balancer move: copy `block` to `dst`, then drop it from `src`.
    Balancer {
        block: BlockId,
        src: NodeId,
        dst: NodeId,
    },
}

/// Who asked for a block write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WriteOwner {
    /// Input staging from the central server.
    Upload,
    /// A reduce attempt writing its output file.
    ReduceOutput { attempt: AttemptRef },
}

/// An in-progress pipelined block write.
#[derive(Clone, Debug)]
struct WriteState {
    block: BlockId,
    file: FileId,
    targets: Vec<NodeId>,
    written: Vec<NodeId>,
    outstanding: usize,
    owner: WriteOwner,
    retries: u8,
    size: u64,
    flow_ids: Vec<FlowId>,
    /// Datanodes this write already saw fail; excluded on retry, like an
    /// HDFS client's excluded-nodes list.
    excluded: std::collections::BTreeSet<NodeId>,
}

/// Cached per-map-attempt execution parameters.
#[derive(Clone, Copy, Debug)]
struct MapMeta {
    node: NodeId,
    block: BlockId,
    input_bytes: u64,
    cpu_secs: f64,
    output_bytes: u64,
}

/// Run phase (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPhase {
    /// Waiting for the pool to reach the configured size.
    Forming,
    /// Staging input data into HDFS.
    Uploading,
    /// Replaying the submission schedule.
    Running,
    /// Every job reached a terminal state.
    Done,
}

/// Cumulative mediator-level counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClusterCounters {
    /// Input blocks that could not be allocated at upload.
    pub upload_alloc_failures: u64,
    /// Pipeline writes abandoned after repeated head failures.
    pub write_failures: u64,
    /// Attempts doomed on zombie nodes.
    pub zombie_task_failures: u64,
    /// Attempts doomed by missing input blocks.
    pub lost_block_failures: u64,
    /// Shuffle fetch timeouts against unusable sources.
    pub fetch_timeouts: u64,
}

/// Handles into the per-layer metrics registry (hog-obs), sampled every
/// master tick.
struct ObsMetrics {
    reg: MetricsRegistry,
    pool_usable: MetricId,
    pool_reported: MetricId,
    zombies: MetricId,
    node_starts: MetricId,
    missing_blocks: MetricId,
    repl_completed: MetricId,
    block_reads: MetricId,
    repl_trims: MetricId,
    avail_raised: MetricId,
    avail_lowered: MetricId,
    replica_bytes: MetricId,
    maps_done: MetricId,
    reduces_done: MetricId,
    task_failures: MetricId,
    jobs_finished: MetricId,
    sched_node_local: MetricId,
    sched_rack_local: MetricId,
    sched_site_local: MetricId,
    sched_remote: MetricId,
    rescue_copies: MetricId,
    rescue_hits: MetricId,
    rescue_misses: MetricId,
    flows_active: MetricId,
    flows_done: MetricId,
    pool_target: MetricId,
    pool_outstanding: MetricId,
    elastic_resizes: MetricId,
    fairness_jain: MetricId,
    failover_recovery_ms: MetricId,
    failover_lost_window_ms: MetricId,
    failover_reregistrations: MetricId,
    failover_crashes: MetricId,
    /// Per-job running-slot share series, registered lazily as jobs are
    /// submitted (`mapreduce/job<i>_slots`), indexed by `JobId`.
    job_slots: Vec<MetricId>,
    job_secs: HistogramId,
}

impl ObsMetrics {
    fn new() -> Self {
        let mut reg = MetricsRegistry::new();
        ObsMetrics {
            pool_usable: reg.register(Layer::Core, "pool_usable"),
            pool_reported: reg.register(Layer::Core, "pool_reported"),
            zombies: reg.register(Layer::Core, "zombies"),
            node_starts: reg.register(Layer::Grid, "node_starts"),
            missing_blocks: reg.register(Layer::Hdfs, "missing_blocks"),
            repl_completed: reg.register(Layer::Hdfs, "repl_completed"),
            block_reads: reg.register(Layer::Hdfs, "block_reads"),
            repl_trims: reg.register(Layer::Hdfs, "repl_trims"),
            avail_raised: reg.register(Layer::Hdfs, "avail_raised"),
            avail_lowered: reg.register(Layer::Hdfs, "avail_lowered"),
            replica_bytes: reg.register(Layer::Hdfs, "replica_bytes"),
            maps_done: reg.register(Layer::MapReduce, "maps_done"),
            reduces_done: reg.register(Layer::MapReduce, "reduces_done"),
            task_failures: reg.register(Layer::MapReduce, "task_failures"),
            jobs_finished: reg.register(Layer::MapReduce, "jobs_finished"),
            sched_node_local: reg.register(Layer::MapReduce, "sched_node_local"),
            sched_rack_local: reg.register(Layer::MapReduce, "sched_rack_local"),
            sched_site_local: reg.register(Layer::MapReduce, "sched_site_local"),
            sched_remote: reg.register(Layer::MapReduce, "sched_remote"),
            rescue_copies: reg.register(Layer::MapReduce, "rescue_copies"),
            rescue_hits: reg.register(Layer::MapReduce, "rescue_hits"),
            rescue_misses: reg.register(Layer::MapReduce, "rescue_misses"),
            flows_active: reg.register(Layer::Net, "flows_active"),
            flows_done: reg.register(Layer::Net, "flows_done"),
            pool_target: reg.register(Layer::Core, "pool_target"),
            pool_outstanding: reg.register(Layer::Core, "pool_outstanding"),
            elastic_resizes: reg.register(Layer::Core, "elastic_resizes"),
            fairness_jain: reg.register(Layer::MapReduce, "fairness_jain"),
            failover_recovery_ms: reg.register(Layer::Core, "failover_recovery_ms"),
            failover_lost_window_ms: reg.register(Layer::Core, "failover_lost_window_ms"),
            failover_reregistrations: reg.register(Layer::Core, "failover_reregistrations"),
            failover_crashes: reg.register(Layer::Core, "failover_crashes"),
            job_slots: Vec::new(),
            job_secs: reg.register_histogram(
                Layer::MapReduce,
                "job_secs",
                vec![60.0, 300.0, 600.0, 1200.0, 3600.0, 7200.0, 14400.0],
            ),
            reg,
        }
    }
}

/// One deferred entry of the workload/fault dispatch plan (see
/// `Cluster::dispatch_plan`).
#[derive(Clone, Copy, Debug)]
enum PlannedEvent {
    SubmitJob(usize),
    Chaos(u32),
    ChaosEnd(u32),
}

/// The full-cluster simulation model.
pub struct Cluster {
    cfg: ClusterConfig,
    topo: Topology,
    net: FluidNet,
    grid: Option<GridModel>,
    /// The Namenode + JobTracker stack behind its failover lifecycle.
    masters: SingleMasterStack,
    rng: SimRng,
    master: NodeId,
    /// Nodes whose daemons are running (zombies included).
    daemons_up: BTreeSet<NodeId>,
    /// Zombie nodes: daemons up, storage gone.
    zombies: BTreeSet<NodeId>,
    flows: HashMap<FlowId, FlowCtx>,
    attempt_flows: HashMap<AttemptRef, Vec<FlowId>>,
    writes: HashMap<u64, WriteState>,
    next_write_id: u64,
    map_meta: HashMap<AttemptRef, MapMeta>,
    reduce_out: HashMap<AttemptRef, (u64, u16)>,
    schedule: Vec<JobSpec>,
    input_files: Vec<FileId>,
    job_of_schedule: HashMap<JobId, usize>,
    /// Per-schedule-index outcome: completion time (None = failed).
    pub job_results: Vec<Option<(SimTime, bool)>>,
    finished_jobs: usize,
    phase: RunPhase,
    upload_queue: VecDeque<(FileId, u64)>,
    upload_in_flight: usize,
    /// Nodes the master believes alive (JobTracker view; Fig. 5 curve).
    pub reported_series: StepSeries,
    /// Daemons actually running and usable.
    pub actual_series: StepSeries,
    /// First submission instant.
    pub workload_start: Option<SimTime>,
    /// Last job completion instant.
    pub workload_end: Option<SimTime>,
    /// Mediator counters.
    pub counters: ClusterCounters,
    target_nodes: usize,
    /// Adaptive-replication controller (extension X9), when enabled.
    adaptive: Option<crate::adaptive::AdaptiveReplication>,
    /// History of adaptive factor changes: (time, factor).
    pub adaptive_changes: Vec<(SimTime, u16)>,
    /// Last availability-policy sweep instant (X17), when armed.
    avail_last: Option<SimTime>,
    /// History of availability sweeps that changed any target:
    /// (time, targets raised, targets lowered).
    pub avail_actions: Vec<(SimTime, u64, u64)>,
    /// Elastic pool controller, when `cfg.elastic` is set on a grid run.
    elastic: Option<ElasticController>,
    /// History of elastic resizes: (time, signed node delta).
    pub elastic_actions: Vec<(SimTime, i64)>,
    /// `(map, reduce)` slots each worker registered with (chaos heal
    /// re-registration needs the original values).
    slots_of: HashMap<NodeId, (u8, u8)>,
    /// Nodes currently behind an injected network partition: daemons
    /// alive, traffic and heartbeats cut (hog-chaos).
    partitioned: BTreeSet<NodeId>,
    /// Which nodes each active partition fault cut off (for healing).
    partition_members: HashMap<u32, Vec<NodeId>>,
    /// Straggler slowdowns: node → (cpu multiplier, disk multiplier).
    straggle: HashMap<NodeId, (f64, f64)>,
    /// Masters suspended until this instant (chaos `MasterStall`).
    master_stalled_until: Option<SimTime>,
    /// Decorrelated RNG stream for chaos victim selection.
    chaos_rng: SimRng,
    /// Decorrelated RNG stream for the straggler mix, present exactly
    /// when `cfg.straggler` is set so unconfigured runs draw nothing.
    straggler_rng: Option<SimRng>,
    /// Invariant auditor, when `cfg.chaos.audit` is set.
    auditor: Option<Auditor>,
    /// Livelock watchdog, when `cfg.chaos.watchdog` is set.
    watchdog: Option<Watchdog>,
    /// Network transfers that ran to completion (progress signal).
    flows_done: u64,
    /// Fire times with a NetTick already queued. Arming is cheap but the
    /// naive "push one tick per net mutation" floods the queue with
    /// duplicates at busy instants (they dominated event count at 1000+
    /// nodes); a tick at an already-armed instant is a provable no-op, so
    /// it is skipped. Distinct instants must all stay armed — a stale
    /// earlier tick is a real progress point.
    armed_net_ticks: BTreeSet<SimTime>,
    /// Reusable buffer for `Network::advance_into` (NetTick hot path).
    flow_end_buf: Vec<FlowEnd>,
    /// Reusable buffer for `JobTracker::heartbeat_into` (Heartbeat hot
    /// path): one allocation serves every heartbeat of the run.
    assign_buf: Vec<Assignment>,
    /// Deferred schedule/fault-plan dispatch: instead of flooding the
    /// event queue with every SubmitJob/Chaos/ChaosEnd at workload start,
    /// the plan is kept here sorted by firing order and fed to the queue
    /// one entry at a time (each fired entry schedules the next). The
    /// queue sequence numbers each entry *would* have received were
    /// reserved up front, so heap ordering — and therefore the simulated
    /// outcome — is bit-identical to eager dispatch.
    dispatch_plan: Vec<(SimTime, u64, PlannedEvent)>,
    dispatch_cursor: usize,
    /// Set when the chaos layer aborted the run.
    chaos_failure: Option<ChaosFailure>,
    /// Shared trace handle (hog-obs); a no-op unless configured.
    tracer: Tracer,
    /// Metrics registry + handles, when `cfg.obs.metrics` is set.
    obs_metrics: Option<ObsMetrics>,
    /// Pool mode (`cfg.pool` set): home data uploaded, awaiting the
    /// federation's workload go-signal.
    pool_ready: bool,
    /// Pool mode: schedule indices whose submission timeline fired here
    /// and now await meta-scheduler routing. Drained by the federation
    /// after every handled event.
    pending_routes: Vec<usize>,
    /// Pool mode: runtime dataset stagings that finished (all blocks
    /// committed or permanently failed). Drained by the federation.
    completed_stagings: Vec<usize>,
    /// Pool mode: in-flight runtime stagings, file → (schedule index,
    /// blocks still outstanding).
    staging: HashMap<FileId, (usize, usize)>,
}

impl Cluster {
    /// Build a cluster (and its initial event seeds) from a config and a
    /// workload. Call [`Cluster::bootstrap`] to obtain the initial events.
    pub fn new(cfg: ClusterConfig, schedule: &SubmissionSchedule) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut topo = Topology::new();
        // The stable central server (Namenode + JobTracker) lives in its
        // own "site": a well-connected machine outside the worker pool.
        let central = topo.add_site("CENTRAL", "hcc.unl.edu");
        let master = topo.add_node_named(central, "master.hcc.unl.edu".to_string());
        let mut net = FluidNet::new(cfg.net);
        net.register_node(master, central);

        let placement: Box<dyn hog_hdfs::PlacementPolicy> = match &cfg.placement {
            PlacementKind::SiteAware => Box::new(SiteAwarePolicy),
            PlacementKind::RackAware => Box::new(RackAwarePolicy),
            PlacementKind::RackOblivious => Box::new(RackObliviousPolicy),
            // Resolved to the concrete site id in bootstrap(), once the
            // grid has registered its sites in the topology.
            PlacementKind::AnchorFirst { .. } => Box::new(SiteAwarePolicy),
        };
        let tracer = Tracer::new(cfg.obs.trace);
        net.set_tracer(tracer.clone());
        let mut nn = Namenode::new(cfg.hdfs.clone(), placement, rng.fork(2));
        nn.set_tracer(tracer.clone());
        let mut jt = JobTracker::new(cfg.mr, rng.fork(3));
        jt.set_tracer(tracer.clone());
        let obs_metrics = cfg.obs.metrics.then(ObsMetrics::new);
        let target_nodes = cfg.resource.target_nodes();
        // The controller only makes sense over a glidein pool; on fixed
        // clusters an `elastic` config is silently inert.
        let elastic = cfg.elastic.as_ref().and_then(|ec| match &cfg.resource {
            ResourceConfig::Grid { params, sites, .. } => {
                Some(ElasticController::new(ec.clone(), params, sites))
            }
            ResourceConfig::Fixed { .. } => None,
        });
        let n_jobs = schedule.len();
        let cfg2 = cfg.adaptive_replication;
        let chaos_seed = cfg.seed ^ 0x686f_675f_6368_616f; // b"hog_chao"
        let straggler_seed = cfg.seed ^ 0x686f_675f_7374_7261; // b"hog_stra"
        let straggler_on = cfg.straggler.is_some();
        let chaos_audit = cfg.chaos.audit;
        let chaos_watchdog = cfg.chaos.watchdog;
        let failover_cfg = cfg.failover;
        Cluster {
            cfg,
            topo,
            net,
            grid: None,
            masters: SingleMasterStack::new(nn, jt, failover_cfg),
            rng,
            master,
            daemons_up: BTreeSet::new(),
            zombies: BTreeSet::new(),
            flows: HashMap::new(),
            attempt_flows: HashMap::new(),
            writes: HashMap::new(),
            next_write_id: 0,
            map_meta: HashMap::new(),
            reduce_out: HashMap::new(),
            schedule: schedule.jobs().to_vec(),
            input_files: Vec::new(),
            job_of_schedule: HashMap::new(),
            job_results: vec![None; n_jobs],
            finished_jobs: 0,
            phase: RunPhase::Forming,
            upload_queue: VecDeque::new(),
            upload_in_flight: 0,
            reported_series: StepSeries::new(),
            actual_series: StepSeries::new(),
            workload_start: None,
            workload_end: None,
            counters: ClusterCounters::default(),
            target_nodes,
            adaptive: cfg2.map(|(min, max)| crate::adaptive::AdaptiveReplication::new(min, max)),
            adaptive_changes: Vec::new(),
            avail_last: None,
            avail_actions: Vec::new(),
            elastic,
            elastic_actions: Vec::new(),
            slots_of: HashMap::new(),
            partitioned: BTreeSet::new(),
            partition_members: HashMap::new(),
            straggle: HashMap::new(),
            master_stalled_until: None,
            // Seeded independently of the master stream so enabling chaos
            // never perturbs the organic randomness of a run.
            chaos_rng: SimRng::seed_from_u64(chaos_seed),
            straggler_rng: straggler_on.then(|| SimRng::seed_from_u64(straggler_seed)),
            auditor: chaos_audit.then(Auditor::new),
            watchdog: chaos_watchdog.map(Watchdog::new),
            flows_done: 0,
            armed_net_ticks: BTreeSet::new(),
            flow_end_buf: Vec::new(),
            assign_buf: Vec::new(),
            dispatch_plan: Vec::new(),
            dispatch_cursor: 0,
            chaos_failure: None,
            tracer,
            obs_metrics,
            pool_ready: false,
            pending_routes: Vec::new(),
            completed_stagings: Vec::new(),
            staging: HashMap::new(),
        }
    }

    /// Seed the initial events: grid submission (or fixed-node
    /// registration) and the master tick.
    pub fn bootstrap(&mut self, sim: &mut hog_sim_core::Simulation<Self>) {
        self.bootstrap_sched(&mut sim.scheduler());
    }

    /// [`Cluster::bootstrap`] over a bare [`Scheduler`] handle, for
    /// executors that drive the model without a [`hog_sim_core::Simulation`]
    /// (the hog-fed federation co-simulates several clusters, each with
    /// its own queue). Must be called with the clock at zero.
    pub fn bootstrap_sched(&mut self, sched: &mut Scheduler<'_, Event>) {
        debug_assert_eq!(sched.now(), SimTime::ZERO);
        sched.at(SimTime::ZERO, Event::MasterTick);
        self.finish_bootstrap(sched);
        // Anchor placement needs the anchor site's id, known only now.
        if let PlacementKind::AnchorFirst { site_name } = self.cfg.placement.clone() {
            let anchor = self
                .topo
                .sites()
                .iter()
                .find(|s| s.name == site_name)
                .map(|s| s.id)
                .expect("anchor site not registered");
            self.masters
                .nn
                .set_policy(Box::new(hog_hdfs::AnchorFirstPolicy { anchor }));
        }
    }

    fn finish_bootstrap(&mut self, sched: &mut Scheduler<'_, Event>) {
        match self.cfg.resource.clone() {
            ResourceConfig::Grid {
                params,
                sites,
                target_nodes,
                ..
            } => {
                let (mut grid, init) =
                    GridModel::new(params, sites, &mut self.topo, self.rng.fork(1));
                grid.set_tracer(self.tracer.clone());
                for (d, e) in init {
                    sched.at(SimTime::ZERO + d, Event::Grid(e));
                }
                let out = grid.submit_workers(SimTime::ZERO, target_nodes);
                for (d, e) in out.defer {
                    sched.at(SimTime::ZERO + d, Event::Grid(e));
                }
                debug_assert!(out.notes.is_empty());
                self.grid = Some(grid);
            }
            ResourceConfig::Fixed {
                site_name,
                domain,
                nodes,
            } => {
                let site = self.topo.add_site(site_name, domain);
                let specs: Vec<(NodeId, (u8, u8))> = nodes
                    .iter()
                    .map(|&slots| (self.topo.add_node(site), slots))
                    .collect();
                for (node, (m, r)) in specs {
                    self.register_worker(node, m, r, sched);
                }
                self.phase = RunPhase::Uploading;
                self.begin_upload_queue();
                sched.at(SimTime::ZERO, Event::PumpUpload);
            }
        }
    }

    fn register_worker(
        &mut self,
        node: NodeId,
        map_slots: u8,
        reduce_slots: u8,
        sched: &mut Scheduler<'_, Event>,
    ) {
        self.register_worker_common(sched.now(), node, map_slots, reduce_slots);
        let (hb, check) = self.worker_timers(node);
        sched.after(hb, Event::Heartbeat { node });
        if let Some(d) = check {
            sched.after(d, Event::DiskCheck { node });
        }
    }

    fn register_worker_common(&mut self, now: SimTime, node: NodeId, m: u8, r: u8) {
        self.daemons_up.insert(node);
        self.slots_of.insert(node, (m, r));
        self.net.register_node(node, self.topo.site_of(node));
        self.masters.nn.register_datanode(now, node);
        self.masters
            .jt
            .register_tracker(now, node, self.topo.site_of(node), m, r);
    }

    /// Stagger heartbeats so 1000 nodes don't tick in the same
    /// millisecond; disk-check period from config.
    fn worker_timers(&self, node: NodeId) -> (SimDuration, Option<SimDuration>) {
        let hb_ms = self.cfg.mr.heartbeat_interval.as_millis().max(1);
        let offset = (node.0 as u64).wrapping_mul(5741) % hb_ms;
        (
            SimDuration::from_millis(offset + 1),
            self.cfg.hdfs.disk_check_interval,
        )
    }

    /// The current run phase.
    pub fn phase(&self) -> RunPhase {
        self.phase
    }

    /// Topology access (reports).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Namenode access (reports).
    pub fn namenode(&self) -> &Namenode {
        &self.masters.nn
    }

    /// JobTracker access (reports).
    pub fn jobtracker(&self) -> &JobTracker {
        &self.masters.jt
    }

    /// Grid access (reports), if this cluster runs on the grid.
    pub fn grid(&self) -> Option<&GridModel> {
        self.grid.as_ref()
    }

    /// Network access (reports).
    pub fn network(&self) -> &FluidNet {
        &self.net
    }

    /// Count of *input* blocks currently missing (diagnostics: these are
    /// the ones that fail jobs).
    pub fn missing_input_blocks(&self) -> usize {
        self.input_files
            .iter()
            .flat_map(|&f| self.masters.nn.blocks_of(f))
            .filter(|&&b| {
                self.masters.nn.block(b).expected > 0 && self.masters.nn.block(b).is_missing()
            })
            .count()
    }

    /// Schedule-index ↔ JobTracker id mapping (reports).
    pub fn job_for_index(&self, index: usize) -> Option<JobId> {
        self.job_of_schedule
            .iter()
            .find(|(_, &i)| i == index)
            .map(|(&j, _)| j)
    }

    // ==================================================================
    // Pool mode (hog-fed)
    // ==================================================================

    /// The configuration this cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Pool mode: whether home data is uploaded and the pool is waiting
    /// for the federation's `begin_workload` go-signal.
    pub fn pool_ready(&self) -> bool {
        self.pool_ready
    }

    /// Pool mode: drain the schedule indices whose submission timeline
    /// fired here since the last drain (they await routing).
    pub fn take_pending_routes(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.pending_routes)
    }

    /// Pool mode: drain the runtime dataset stagings that completed since
    /// the last drain.
    pub fn take_completed_stagings(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.completed_stagings)
    }

    /// Pool mode: submit schedule index `index` to *this* pool's
    /// JobTracker (the meta-scheduler routed it here). The input dataset
    /// must already be resident (home, or staged via
    /// [`Cluster::stage_dataset`]).
    pub fn external_submit(&mut self, index: usize, sched: &mut Scheduler<'_, Event>) {
        self.on_submit_job(sched, index);
    }

    /// Pool mode: write schedule index `index`'s input dataset into this
    /// pool's HDFS at `replication`, during the Running phase (cross-pool
    /// staging: the bytes already crossed the inter-pool WAN; this stages
    /// them onto local datanodes). Completion is reported through
    /// [`Cluster::take_completed_stagings`].
    pub fn stage_dataset(
        &mut self,
        index: usize,
        replication: u16,
        sched: &mut Scheduler<'_, Event>,
    ) {
        debug_assert!(self.cfg.pool.is_some());
        let f = self.input_files[index];
        self.masters.nn.set_file_replication(f, replication);
        let blocks = self.schedule[index].maps as usize;
        if blocks == 0 || self.staging.contains_key(&f) {
            self.completed_stagings.push(index);
            return;
        }
        self.staging.insert(f, (index, blocks));
        let block_size = self.cfg.hdfs.block_size;
        for _ in 0..blocks {
            self.upload_queue.push_back((f, block_size));
        }
        self.pump_upload(sched);
    }

    /// One staged block reached a terminal state (committed or
    /// permanently failed); completes the file when it was the last.
    fn staging_block_done(&mut self, file: FileId) {
        let Some((index, remaining)) = self.staging.get_mut(&file) else {
            return;
        };
        *remaining -= 1;
        if *remaining == 0 {
            let index = *index;
            self.staging.remove(&file);
            self.masters.nn.complete_file(file);
            self.tracer
                .emit(|| TraceEvent::new(Layer::Fed, "stage_done").with("index", index));
            self.completed_stagings.push(index);
        }
    }

    // ==================================================================
    // Upload
    // ==================================================================

    fn begin_upload_queue(&mut self) {
        let block = self.cfg.hdfs.block_size;
        for (i, spec) in self.schedule.iter().enumerate() {
            let f = self
                .masters
                .nn
                .create_file(format!("/in/job{i}"), self.cfg.hdfs.replication);
            self.input_files.push(f);
            // Pool mode: every file exists (so `input_files[i]` stays
            // aligned with the schedule), but only datasets homed here
            // get their blocks written now; foreign datasets stay empty
            // until the federation stages them over the inter-pool WAN.
            if self.cfg.pool.as_ref().is_some_and(|p| !p.is_home(i)) {
                continue;
            }
            for _ in 0..spec.maps {
                self.upload_queue.push_back((f, block));
            }
        }
    }

    fn pump_upload(&mut self, sched: &mut Scheduler<'_, Event>) {
        while self.upload_in_flight < self.cfg.upload_parallel {
            let Some((file, size)) = self.upload_queue.pop_front() else {
                break;
            };
            match self.masters.nn.allocate_block(file, size, None, &self.topo) {
                Some((block, targets)) => {
                    self.upload_in_flight += 1;
                    self.start_write(sched, WriteOwner::Upload, file, block, size, targets, None);
                }
                None => {
                    self.counters.upload_alloc_failures += 1;
                    self.staging_block_done(file);
                }
            }
        }
        if self.upload_queue.is_empty()
            && self.upload_in_flight == 0
            && self.phase == RunPhase::Uploading
        {
            self.finish_upload(sched);
        }
    }

    fn finish_upload(&mut self, sched: &mut Scheduler<'_, Event>) {
        for (i, &f) in self.input_files.iter().enumerate() {
            // Pool mode: foreign datasets are still empty placeholders;
            // completing them would freeze them at zero blocks.
            if self.cfg.pool.as_ref().is_some_and(|p| !p.is_home(i)) {
                continue;
            }
            self.masters.nn.complete_file(f);
        }
        if std::env::var("HOG_DEBUG_WRITES").is_ok() {
            let mut hist = std::collections::BTreeMap::new();
            for &f in &self.input_files {
                for &b in self.masters.nn.blocks_of(f) {
                    *hist
                        .entry(self.masters.nn.block(b).replicas.len())
                        .or_insert(0u32) += 1;
                }
            }
            eprintln!("upload done at {}: replica histogram {hist:?}", sched.now());
        }
        self.phase = RunPhase::Running;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Core, "phase")
                .with("to", "running")
                .with("files", self.input_files.len())
        });
        // Checkpoint zero: the standby always has at least the complete
        // post-upload state, so even an immediate crash restores a master
        // that knows every input file. (Mirror mode needs no snapshots.)
        if self.masters.failover().is_some_and(|f| !f.is_mirror()) {
            self.masters.take_checkpoint(sched.now());
            self.tracer
                .emit(|| TraceEvent::new(Layer::Core, "master_checkpoint").with("count", 1usize));
        }
        if self.cfg.pool.is_some() {
            // Pool mode: the federation decides when the workload starts
            // (all pools must be ready and cross-pool replicas staged);
            // it will call `begin_workload` then.
            self.pool_ready = true;
            return;
        }
        self.begin_workload(sched.now(), sched);
    }

    /// Anchor the submission + fault timeline at `base` and start feeding
    /// it to the event queue. Standalone clusters call this from
    /// `finish_upload`; in pool mode the federation calls it once every
    /// pool is ready (so `base` is the same instant federation-wide).
    pub fn begin_workload(&mut self, base: SimTime, sched: &mut Scheduler<'_, Event>) {
        self.workload_start = Some(base + (self.schedule[0].submit_at - SimTime::ZERO));
        // Build the dispatch plan instead of pushing every event now: the
        // full Facebook schedule plus fault plan used to sit in the queue
        // for hours of simulated time, inflating queue depth for nothing.
        // Sequence numbers are reserved here in exactly the order the
        // eager loop consumed them, so replaying the plan cursor-style
        // pops in the identical order.
        let mut plan: Vec<(SimTime, u64, PlannedEvent)> = Vec::new();
        for (i, spec) in self.schedule.iter().enumerate() {
            // Pool mode: each index's submission timeline fires in its
            // home pool only (the fired event is then routed anywhere).
            if self.cfg.pool.as_ref().is_some_and(|p| !p.is_home(i)) {
                continue;
            }
            let at = base + (spec.submit_at - SimTime::ZERO);
            plan.push((at, 0, PlannedEvent::SubmitJob(i)));
        }
        // Fault injection is anchored to workload start, like job
        // submission: a plan is meaningful relative to the workload, not
        // to however long pool formation and upload happened to take.
        for (i, tf) in self.cfg.chaos.plan.faults().iter().enumerate() {
            let index = i as u32;
            plan.push((base + tf.at, 0, PlannedEvent::Chaos(index)));
            if let Some(w) = tf.fault.window() {
                plan.push((base + tf.at + w, 0, PlannedEvent::ChaosEnd(index)));
            }
        }
        let first = sched.reserve_seqs(plan.len() as u64);
        for (i, e) in plan.iter_mut().enumerate() {
            e.1 = first + i as u64;
        }
        plan.sort_by_key(|&(at, seq, _)| (at, seq));
        self.dispatch_plan = plan;
        self.dispatch_cursor = 0;
        self.pump_dispatch(sched);
    }

    /// Feed the next entry of the dispatch plan into the event queue under
    /// its reserved sequence number. Every dispatched event's handler
    /// calls this again, so exactly one plan entry is pending at a time.
    /// An entry never fires before its predecessor (the plan is sorted by
    /// firing order), so scheduling entry k+1 while handling entry k never
    /// needs to place it in the past.
    fn pump_dispatch(&mut self, sched: &mut Scheduler<'_, Event>) {
        if let Some(&(at, seq, planned)) = self.dispatch_plan.get(self.dispatch_cursor) {
            self.dispatch_cursor += 1;
            let ev = match planned {
                PlannedEvent::SubmitJob(index) => Event::SubmitJob { index },
                PlannedEvent::Chaos(index) => Event::Chaos { index },
                PlannedEvent::ChaosEnd(index) => Event::ChaosEnd { index },
            };
            sched.at_with_seq(at, seq, ev);
        }
    }

    // ==================================================================
    // Pipelined block writes
    // ==================================================================

    /// Begin writing `block` to `targets`. `writer` is the local datanode
    /// for output writes (None = the central server is the client).
    #[allow(clippy::too_many_arguments)]
    fn start_write(
        &mut self,
        sched: &mut Scheduler<'_, Event>,
        owner: WriteOwner,
        file: FileId,
        block: BlockId,
        size: u64,
        targets: Vec<NodeId>,
        writer: Option<NodeId>,
    ) {
        debug_assert!(!targets.is_empty());
        let id = self.next_write_id;
        self.next_write_id += 1;
        let head = targets[0];
        let mut st = WriteState {
            block,
            file,
            targets: targets.clone(),
            written: Vec::new(),
            outstanding: 0,
            owner,
            retries: 0,
            size,
            flow_ids: Vec::new(),
            excluded: std::collections::BTreeSet::new(),
        };
        if writer == Some(head) {
            // Writer-local first replica: the local disk write overlaps
            // the fan-out; start fanning immediately.
            st.written.push(head);
            self.writes.insert(id, st);
            self.start_fan(sched, id);
        } else if !self.node_usable(head) {
            // The chosen head died (or is a zombie) in the same instant;
            // exclude it and retry with fresh targets.
            st.excluded.insert(head);
            self.writes.insert(id, st);
            self.retry_or_fail_write(sched, id);
        } else {
            let src = writer.unwrap_or(self.master);
            let fid = self.net.start_flow(sched.now(), src, head, size, 0);
            self.flows.insert(fid, FlowCtx::PipeHead { write: id });
            st.flow_ids.push(fid);
            self.writes.insert(id, st);
            self.arm_net(sched);
        }
        if let WriteOwner::ReduceOutput { attempt } = owner {
            // Track the write's flows under the attempt for cancellation.
            // (The write may already be gone if the unusable-head branch
            // above retried/failed it synchronously.)
            if let Some(st) = self.writes.get(&id) {
                let ids = st.flow_ids.clone();
                self.attempt_flows.entry(attempt).or_default().extend(ids);
            }
        }
    }

    /// Whether a node is alive with working storage (writable target).
    fn node_usable(&self, node: NodeId) -> bool {
        self.daemons_up.contains(&node)
            && !self.zombies.contains(&node)
            && !self.partitioned.contains(&node)
    }

    /// Whether a node is alive and on the network: daemons running and
    /// not cut off by an injected partition. Storage state is irrelevant
    /// (a zombie still serves cached map output and heartbeats).
    fn node_reachable(&self, node: NodeId) -> bool {
        self.daemons_up.contains(&node) && !self.partitioned.contains(&node)
    }

    /// Chaos straggler multipliers for `node`: `(cpu, disk)`, 1.0 = no
    /// slowdown.
    fn slow(&self, node: NodeId) -> (f64, f64) {
        self.straggle.get(&node).copied().unwrap_or((1.0, 1.0))
    }

    /// Workload straggler-mix CPU multiplier for one task attempt: 1.0
    /// unless `cfg.straggler` is set, in which case the dedicated
    /// straggler stream decides whether (and how badly) this attempt
    /// straggles. Distinct from the chaos [`Cluster::slow`] multipliers,
    /// which model injected per-node faults rather than organic task
    /// variance.
    fn straggler_factor(&mut self) -> f64 {
        match (&self.cfg.straggler, &mut self.straggler_rng) {
            (Some(mix), Some(rng)) => mix.factor(rng),
            _ => 1.0,
        }
    }

    /// Fan the block from its first holder to the remaining replicas.
    /// Targets that died (or zombified) since allocation are skipped —
    /// the replication monitor repairs the deficit later.
    fn start_fan(&mut self, sched: &mut Scheduler<'_, Event>, write: u64) {
        let (head, rest, size, owner) = {
            let st = &self.writes[&write];
            (st.written[0], st.targets[1..].to_vec(), st.size, st.owner)
        };
        let rest: Vec<NodeId> = rest.into_iter().filter(|&t| self.node_usable(t)).collect();
        if rest.is_empty() {
            self.finish_write(sched, write);
            return;
        }
        let mut new_flows = Vec::new();
        for t in rest {
            let fid = self.net.start_flow(sched.now(), head, t, size, 0);
            self.flows
                .insert(fid, FlowCtx::PipeFan { write, target: t });
            new_flows.push(fid);
        }
        {
            let st = self.writes.get_mut(&write).unwrap();
            st.outstanding = new_flows.len();
            st.flow_ids.extend(new_flows.iter().copied());
        }
        if let WriteOwner::ReduceOutput { attempt } = owner {
            self.attempt_flows
                .entry(attempt)
                .or_default()
                .extend(new_flows);
        }
        self.arm_net(sched);
    }

    fn finish_write(&mut self, sched: &mut Scheduler<'_, Event>, write: u64) {
        // Only count replicas on nodes still alive with working storage;
        // a head that died mid-fan takes its copy (and its fan flows)
        // with it. Zero surviving replicas = pipeline failure → the
        // client retries the whole block, as HDFS clients do.
        let surviving: Vec<NodeId> = self.writes[&write]
            .written
            .iter()
            .copied()
            .filter(|&n| self.node_usable(n))
            .collect();
        if surviving.is_empty() {
            self.retry_or_fail_write(sched, write);
            return;
        }
        let mut st = self.writes.remove(&write).unwrap();
        st.written = surviving;
        self.masters.nn.commit_block(st.block, &st.written);
        match st.owner {
            WriteOwner::Upload => {
                self.upload_in_flight -= 1;
                self.staging_block_done(st.file);
                // Pump via an event, not a direct call: a long run of
                // synchronously-failing writes must not recurse.
                sched.now_event(Event::PumpUpload);
            }
            WriteOwner::ReduceOutput { attempt } => {
                self.masters.nn.complete_file(st.file);
                let notes = self.masters.jt.reduce_done(sched.now(), attempt);
                self.reduce_out.remove(&attempt);
                self.handle_notes(sched, notes);
            }
        }
    }

    /// A pipeline write lost its head transfer: retry with fresh targets
    /// or abandon.
    fn retry_or_fail_write(&mut self, sched: &mut Scheduler<'_, Event>, write: u64) {
        let Some(st) = self.writes.get(&write) else {
            return;
        };
        let (owner, file, size, retries, old_block) =
            (st.owner, st.file, st.size, st.retries, st.block);
        let mut excluded = st.excluded.clone();
        // Whatever head this write last targeted has now failed it.
        if let Some(&head) = st.targets.first() {
            excluded.insert(head);
        }
        self.writes.remove(&write);
        // The failed allocation leaves the namespace entirely.
        self.masters.nn.abandon_block(old_block);
        let writer = match owner {
            WriteOwner::Upload => None,
            WriteOwner::ReduceOutput { attempt } => Some(self.attempt_node(attempt)),
        };
        // A reduce whose own node died cannot retry its output write; the
        // JobTracker's tracker timeout reschedules the whole attempt.
        let writer_gone = writer.is_some_and(|w| !self.node_reachable(w));
        if retries < 3 && !writer_gone {
            if let Some((block, targets)) = self
                .masters
                .nn
                .allocate_block_excluding(file, size, writer, &excluded, &self.topo)
            {
                let id = self.next_write_id;
                self.next_write_id += 1;
                self.writes.insert(
                    id,
                    WriteState {
                        block,
                        file,
                        targets: targets.clone(),
                        written: Vec::new(),
                        outstanding: 0,
                        owner,
                        retries: retries + 1,
                        size,
                        flow_ids: Vec::new(),
                        excluded,
                    },
                );
                let head = targets[0];
                if writer == Some(head) {
                    let st = self.writes.get_mut(&id).unwrap();
                    st.written.push(head);
                    self.start_fan(sched, id);
                } else if !self.node_usable(head) {
                    self.writes.get_mut(&id).unwrap().excluded.insert(head);
                    self.retry_or_fail_write(sched, id);
                } else {
                    let src = writer.unwrap_or(self.master);
                    let fid = self.net.start_flow(sched.now(), src, head, size, 0);
                    self.flows.insert(fid, FlowCtx::PipeHead { write: id });
                    self.writes.get_mut(&id).unwrap().flow_ids.push(fid);
                    self.arm_net(sched);
                }
                return;
            }
        }
        self.counters.write_failures += 1;
        if std::env::var("HOG_DEBUG_WRITES").is_ok() {
            eprintln!(
                "write failed: owner={owner:?} retries={retries} block={old_block:?} size={size}"
            );
        }
        match owner {
            WriteOwner::Upload => {
                self.upload_in_flight -= 1;
                self.counters.upload_alloc_failures += 1;
                self.staging_block_done(file);
                sched.now_event(Event::PumpUpload);
            }
            WriteOwner::ReduceOutput { attempt } => {
                let notes =
                    self.masters
                        .jt
                        .attempt_failed(sched.now(), attempt, FailReason::DiskFull);
                self.reduce_out.remove(&attempt);
                self.handle_notes(sched, notes);
            }
        }
    }

    // ==================================================================
    // Network plumbing
    // ==================================================================

    /// (Re-)arm the network tick at the next flow completion, unless a
    /// tick at that exact instant is already pending (see
    /// [`Cluster::armed_net_ticks`]).
    fn arm_net(&mut self, sched: &mut Scheduler<'_, Event>) {
        if let Some(t) = self.net.next_completion() {
            // Mirror Scheduler::at's past-clamp so the bookkeeping key
            // matches the instant the tick will actually fire at.
            let t = t.max(sched.now());
            if self.armed_net_ticks.insert(t) {
                sched.at(t, Event::NetTick);
            }
        }
    }

    fn on_flow_end(&mut self, sched: &mut Scheduler<'_, Event>, end: FlowEnd) {
        let Some(ctx) = self.flows.remove(&end.id) else {
            return;
        };
        let ok = end.outcome == FlowOutcome::Completed;
        if ok {
            self.flows_done += 1;
        }
        match ctx {
            FlowCtx::MapInput { attempt } => {
                if !self.masters.jt.attempt_active(attempt) {
                    return;
                }
                let Some(meta) = self.map_meta.get(&attempt).copied() else {
                    return;
                };
                if !self.node_reachable(meta.node) {
                    return; // node died; JT timeout will requeue
                }
                if ok {
                    let (cpu, _) = self.slow(meta.node);
                    let strag = self.straggler_factor();
                    sched.after(
                        SimDuration::from_secs_f64(meta.cpu_secs * cpu * strag),
                        Event::MapComputeDone { attempt },
                    );
                } else {
                    // Source died: pick another replica and retry.
                    self.start_map_read(sched, attempt);
                }
            }
            FlowCtx::Shuffle { attempt, order } => {
                if !self.masters.jt.attempt_active(attempt) {
                    return;
                }
                if ok {
                    self.masters.jt.fetch_done(attempt, order);
                } else {
                    self.masters.jt.fetch_failed(attempt, order, &self.topo);
                }
                self.drive_reduce(sched, attempt);
            }
            FlowCtx::Repl { block, src, dst } => {
                self.masters.nn.repl_done(block, src, dst, ok);
            }
            FlowCtx::Balancer { block, src, dst } => {
                if ok && self.node_usable(dst) {
                    // Copy landed: register it, then drop the source copy
                    // (a move, like `balancer::apply_move`, but with the
                    // transfer having actually crossed the network).
                    // `repl_done` also decrements both ends' replication
                    // stream counters; balancer moves never incremented
                    // them, which is safe because the decrement saturates.
                    self.masters.nn.repl_done(block, src, dst, true);
                    self.masters.nn.report_bad_replica(block, src);
                }
                // Failed moves are simply abandoned; the balancer re-plans
                // on its next tick.
            }
            FlowCtx::PipeHead { write } => {
                if !self.writes.contains_key(&write) {
                    return; // abandoned (owner attempt was killed)
                }
                let head = self.writes[&write].targets[0];
                if ok && self.node_usable(head) {
                    self.writes.get_mut(&write).unwrap().written.push(head);
                    self.start_fan(sched, write);
                } else {
                    if std::env::var("HOG_DEBUG_WRITES").is_ok() {
                        eprintln!(
                            "pipe head end: ok={ok} usable={} head={head:?}",
                            self.node_usable(head)
                        );
                    }
                    // Transfer failed, or the head zombified mid-write
                    // (bytes landed in a deleted working directory).
                    self.retry_or_fail_write(sched, write);
                }
            }
            FlowCtx::PipeFan { write, target } => {
                let usable = self.node_usable(target);
                let Some(st) = self.writes.get_mut(&write) else {
                    return;
                };
                if ok && usable {
                    st.written.push(target);
                }
                st.outstanding -= 1;
                if st.outstanding == 0 {
                    self.finish_write(sched, write);
                }
            }
        }
    }

    // ==================================================================
    // Worker lifecycle
    // ==================================================================

    fn on_node_started(&mut self, node: NodeId, sched: &mut Scheduler<'_, Event>) {
        let (m, r) = match &self.cfg.resource {
            ResourceConfig::Grid { slots, .. } => *slots,
            ResourceConfig::Fixed { .. } => (1, 1),
        };
        self.register_worker(node, m, r, sched);
        // Under churn a glidein pool carries a standing deficit of
        // (death rate x acquisition delay) nodes, so huge pools may never
        // hit `target_nodes` exactly; `formation_grace` admits that slack.
        let grace = (self.target_nodes as f64 * self.cfg.formation_grace) as usize;
        if self.phase == RunPhase::Forming && self.daemons_up.len() >= self.target_nodes - grace {
            self.phase = RunPhase::Uploading;
            self.tracer.emit(|| {
                TraceEvent::new(Layer::Core, "phase")
                    .with("to", "uploading")
                    .with("pool", self.daemons_up.len())
            });
            self.begin_upload_queue();
            sched.now_event(Event::PumpUpload);
        }
    }

    fn on_node_lost(&mut self, node: NodeId, reason: LossReason, sched: &mut Scheduler<'_, Event>) {
        if let Some(ad) = &mut self.adaptive {
            ad.note_loss(sched.now());
        }
        let zombie_roll = self.cfg.zombie.enabled
            && reason == LossReason::Preempted
            && self.rng.chance(self.cfg.zombie.probability);
        if zombie_roll {
            // Double-forked daemons survive the kill; their working
            // directory is gone. They keep heartbeating.
            self.zombies.insert(node);
            self.tracer
                .emit(|| TraceEvent::new(Layer::Core, "zombie_spawn").with("node", node.0));
            self.masters.nn.mark_storage_failed(node);
        } else {
            self.shutdown_daemons(node, sched);
        }
    }

    /// Daemons on `node` are gone: kill flows, stop heartbeats, let the
    /// masters time the node out.
    fn shutdown_daemons(&mut self, node: NodeId, sched: &mut Scheduler<'_, Event>) {
        self.daemons_up.remove(&node);
        self.zombies.remove(&node);
        self.partitioned.remove(&node);
        self.straggle.remove(&node);
        self.slots_of.remove(&node);
        // Mark the masters' views FIRST: killed-flow handlers below may
        // retry writes, and the namenode must not hand the dead node out
        // as a fresh pipeline target.
        self.masters.nn.mark_silent(sched.now(), node);
        self.masters.jt.tracker_silent(sched.now(), node);
        let killed = self.net.remove_node(sched.now(), node);
        for end in killed {
            self.on_flow_end(sched, end);
        }
        self.arm_net(sched);
    }

    // ==================================================================
    // Task execution
    // ==================================================================

    fn attempt_node(&self, att: AttemptRef) -> NodeId {
        self.masters.jt.job(att.task.job).task(att.task).attempts[att.attempt as usize].node
    }

    /// One tasktracker heartbeat: deliver it to the JobTracker (unless
    /// the worker is partitioned or the master is stalled/down) and
    /// launch whatever was assigned, then re-arm the timer. The
    /// assignment buffer is reused across every heartbeat of the run.
    fn on_heartbeat(&mut self, sched: &mut Scheduler<'_, Event>, node: NodeId) {
        if !self.daemons_up.contains(&node) {
            return; // daemon gone: heartbeats stop
        }
        // A partitioned worker keeps its daemons (and this timer)
        // alive, but its heartbeats never reach the JobTracker; a
        // stalled or crashed master receives nothing. Either way
        // the masters' timeout machinery sees silence.
        let stalled = self
            .master_stalled_until
            .is_some_and(|until| sched.now() < until);
        if !self.partitioned.contains(&node) && !stalled && !self.masters.is_down() {
            let mut assignments = std::mem::take(&mut self.assign_buf);
            self.masters
                .jt
                .heartbeat_into(sched.now(), node, &self.topo, &mut assignments);
            self.start_assignments(sched, node, &assignments);
            assignments.clear();
            self.assign_buf = assignments;
        }
        sched.after(self.cfg.mr.heartbeat_interval, Event::Heartbeat { node });
    }

    fn start_assignments(
        &mut self,
        sched: &mut Scheduler<'_, Event>,
        node: NodeId,
        assignments: &[Assignment],
    ) {
        for a in assignments {
            match *a {
                Assignment::Map {
                    attempt,
                    block,
                    input_bytes,
                    cpu_secs,
                    output_bytes,
                    ..
                } => {
                    self.map_meta.insert(
                        attempt,
                        MapMeta {
                            node,
                            block,
                            input_bytes,
                            cpu_secs,
                            output_bytes,
                        },
                    );
                    if self.zombies.contains(&node) {
                        sched.after(
                            self.cfg.zombie_fail_delay,
                            Event::AttemptDoomed {
                                attempt,
                                reason: DoomReason::Zombie,
                            },
                        );
                    } else {
                        self.start_map_read(sched, attempt);
                    }
                }
                Assignment::Reduce { attempt } => {
                    if self.zombies.contains(&node) {
                        sched.after(
                            self.cfg.zombie_fail_delay,
                            Event::AttemptDoomed {
                                attempt,
                                reason: DoomReason::Zombie,
                            },
                        );
                    } else {
                        self.drive_reduce(sched, attempt);
                    }
                }
            }
        }
    }

    /// Resolve the input source for a map attempt and start the read
    /// (local disk or a network flow).
    fn start_map_read(&mut self, sched: &mut Scheduler<'_, Event>, attempt: AttemptRef) {
        let Some(meta) = self.map_meta.get(&attempt).copied() else {
            return;
        };
        if !self.node_reachable(meta.node) {
            return; // node died; the JobTracker timeout requeues the task
        }
        let rtt = self.net.latency(self.master, meta.node) * 2;
        loop {
            match self
                .masters
                .nn
                .pick_read_source(meta.block, meta.node, &self.topo)
            {
                None => {
                    sched.after(
                        rtt + SimDuration::from_secs(1),
                        Event::AttemptDoomed {
                            attempt,
                            reason: DoomReason::LostBlock,
                        },
                    );
                    return;
                }
                Some(src) if self.masters.nn.storage_failed(src) => {
                    // Zombie replica: the read fails fast and the client
                    // reports the bad replica, then tries the next one.
                    self.masters.nn.report_bad_replica(meta.block, src);
                    continue;
                }
                Some(src) if src == meta.node => {
                    let (_, disk) = self.slow(meta.node);
                    let secs = transfer_secs(meta.input_bytes, self.cfg.mr.disk_read_rate) * disk;
                    sched.after(
                        rtt + SimDuration::from_secs_f64(secs),
                        Event::MapInputReady { attempt },
                    );
                    return;
                }
                Some(src) => {
                    let fid = self
                        .net
                        .start_flow(sched.now(), src, meta.node, meta.input_bytes, 0);
                    self.flows.insert(fid, FlowCtx::MapInput { attempt });
                    self.attempt_flows.entry(attempt).or_default().push(fid);
                    self.arm_net(sched);
                    return;
                }
            }
        }
    }

    fn on_map_compute_done(&mut self, sched: &mut Scheduler<'_, Event>, attempt: AttemptRef) {
        if !self.masters.jt.attempt_active(attempt) {
            return;
        }
        let Some(meta) = self.map_meta.get(&attempt).copied() else {
            return;
        };
        if !self.node_reachable(meta.node) {
            return;
        }
        if !self.masters.jt.reserve_map_scratch(attempt, meta.node) {
            // Out of local disk: the §IV-D.2 failure mode.
            let notes = self
                .masters
                .jt
                .attempt_failed(sched.now(), attempt, FailReason::DiskFull);
            self.map_meta.remove(&attempt);
            self.handle_notes(sched, notes);
            return;
        }
        let (_, disk) = self.slow(meta.node);
        let secs = transfer_secs(meta.output_bytes, self.cfg.mr.disk_write_rate) * disk;
        sched.after(
            SimDuration::from_secs_f64(secs),
            Event::MapSpillDone { attempt },
        );
    }

    fn on_map_spill_done(&mut self, sched: &mut Scheduler<'_, Event>, attempt: AttemptRef) {
        if !self.masters.jt.attempt_active(attempt) {
            return;
        }
        let node = self.attempt_node(attempt);
        if !self.node_reachable(node) {
            return;
        }
        let out = self.masters.jt.map_done(sched.now(), attempt, &self.topo);
        self.map_meta.remove(&attempt);
        self.handle_notes(sched, out.notes);
        for r in out.wake_reduces {
            self.drive_reduce(sched, r);
        }
        let notes = self
            .masters
            .jt
            .try_complete_maponly(sched.now(), attempt.task.job);
        self.handle_notes(sched, notes);
    }

    fn drive_reduce(&mut self, sched: &mut Scheduler<'_, Event>, attempt: AttemptRef) {
        if !self.masters.jt.attempt_active(attempt) {
            return;
        }
        let node = self.attempt_node(attempt);
        if !self.node_reachable(node) {
            return;
        }
        match self.masters.jt.reduce_next(attempt) {
            ReduceStep::Fetch(orders) => {
                for (id, order) in orders {
                    let usable = self.node_usable(order.src_rep);
                    if usable {
                        let fid = self.net.start_flow_diffuse(
                            sched.now(),
                            order.src_rep,
                            node,
                            order.bytes,
                            0,
                        );
                        self.flows
                            .insert(fid, FlowCtx::Shuffle { attempt, order: id });
                        self.attempt_flows.entry(attempt).or_default().push(fid);
                    } else {
                        self.counters.fetch_timeouts += 1;
                        sched.after(
                            self.cfg.fetch_retry_delay,
                            Event::FetchTimeout { attempt, order: id },
                        );
                    }
                }
                self.arm_net(sched);
            }
            ReduceStep::StartSort {
                cpu_secs,
                output_bytes,
                replication,
            } => {
                self.reduce_out.insert(attempt, (output_bytes, replication));
                let (cpu, _) = self.slow(node);
                let strag = self.straggler_factor();
                sched.after(
                    SimDuration::from_secs_f64(cpu_secs * cpu * strag),
                    Event::ReduceSortDone { attempt },
                );
            }
            ReduceStep::Wait => {}
        }
    }

    fn on_reduce_sort_done(&mut self, sched: &mut Scheduler<'_, Event>, attempt: AttemptRef) {
        if !self.masters.jt.attempt_active(attempt) {
            return;
        }
        let node = self.attempt_node(attempt);
        if !self.node_reachable(node) {
            return;
        }
        let Some(&(bytes, repl)) = self.reduce_out.get(&attempt) else {
            return;
        };
        let path = format!(
            "/out/j{}/r{}-a{}",
            attempt.task.job.0, attempt.task.index, attempt.attempt
        );
        let file = self.masters.nn.create_file(path, repl);
        match self
            .masters
            .nn
            .allocate_block(file, bytes, Some(node), &self.topo)
        {
            Some((block, targets)) => {
                self.start_write(
                    sched,
                    WriteOwner::ReduceOutput { attempt },
                    file,
                    block,
                    bytes,
                    targets,
                    Some(node),
                );
            }
            None => {
                let notes =
                    self.masters
                        .jt
                        .attempt_failed(sched.now(), attempt, FailReason::DiskFull);
                self.handle_notes(sched, notes);
            }
        }
    }

    fn handle_notes(&mut self, sched: &mut Scheduler<'_, Event>, notes: Vec<JtNote>) {
        for note in notes {
            match note {
                JtNote::KillAttempt { attempt, .. } => {
                    self.cancel_attempt_work(sched, attempt);
                }
                JtNote::JobCompleted { job } => self.on_job_terminal(sched, job, true),
                JtNote::JobFailed { job } => self.on_job_terminal(sched, job, false),
            }
        }
    }

    fn cancel_attempt_work(&mut self, sched: &mut Scheduler<'_, Event>, attempt: AttemptRef) {
        if let Some(ids) = self.attempt_flows.remove(&attempt) {
            for fid in ids {
                // The flow may belong to a pipeline write; abandon it.
                if let Some(FlowCtx::PipeHead { write } | FlowCtx::PipeFan { write, .. }) =
                    self.flows.get(&fid)
                {
                    self.writes.remove(write);
                }
                self.flows.remove(&fid);
                self.net.cancel_flow(sched.now(), fid);
            }
        }
        self.map_meta.remove(&attempt);
        self.reduce_out.remove(&attempt);
        self.arm_net(sched);
    }

    fn on_job_terminal(&mut self, sched: &mut Scheduler<'_, Event>, job: JobId, ok: bool) {
        // A job "completing" while the master is down completed against
        // the crashed master's ledger: nobody can report it to the client
        // and its output namespace dies with the ghost. The restored
        // ledger re-runs it after promotion.
        if self.masters.is_down() {
            return;
        }
        let Some(&idx) = self.job_of_schedule.get(&job) else {
            return;
        };
        if self.job_results[idx].is_none() {
            self.job_results[idx] = Some((sched.now(), ok));
            self.finished_jobs += 1;
            if ok {
                if let (Some(m), Some(start)) = (&mut self.obs_metrics, self.workload_start) {
                    m.reg.observe(
                        m.job_secs,
                        sched.now().saturating_since(start).as_secs_f64(),
                    );
                }
            }
            if self.finished_jobs == self.schedule.len() {
                self.workload_end = Some(sched.now());
                self.phase = RunPhase::Done;
                self.tracer
                    .emit(|| TraceEvent::new(Layer::Core, "phase").with("to", "done"));
            }
        }
    }

    fn on_submit_job(&mut self, sched: &mut Scheduler<'_, Event>, index: usize) {
        // Master down: the client's submission RPC fails. Instead of
        // failing the job it buffers and retries with backoff, exactly
        // like a `JobClient` looping on connect.
        if self.masters.is_down() {
            self.masters.stats.buffered_submissions += 1;
            self.tracer
                .emit(|| TraceEvent::new(Layer::Core, "submit_buffered").with("index", index));
            sched.after(self.cfg.mr.retry_backoff, Event::SubmitJob { index });
            return;
        }
        let file = self.input_files[index];
        let blocks = self.masters.nn.blocks_of(file).to_vec();
        let mut input_blocks = Vec::with_capacity(blocks.len());
        let mut split_locations = Vec::with_capacity(blocks.len());
        for b in blocks {
            let meta = self.masters.nn.block(b);
            input_blocks.push((b, meta.size));
            split_locations.push(meta.replicas.iter().copied().collect::<Vec<_>>());
        }
        let spec = &self.schedule[index];
        let lg = &self.cfg.loadgen;
        let submission = JobSubmission {
            input_blocks,
            split_locations,
            reduces: spec.reduces,
            map_cpu_secs: lg.map_cpu_secs(),
            map_output_bytes: lg.map_output_bytes(),
            reduce_cpu_secs: lg.reduce_cpu_secs(spec.maps, spec.reduces),
            reduce_output_bytes: if spec.reduces == 0 {
                0
            } else {
                lg.output_bytes(spec.maps) / spec.reduces as u64
            },
            output_replication: lg.output_replication,
        };
        let jid = self
            .masters
            .jt
            .submit_job(sched.now(), submission, &self.topo);
        self.job_of_schedule.insert(jid, index);
        // A job whose input vanished entirely (zero blocks uploaded) can
        // never run; terminal-fail it immediately.
        if self.schedule[index].maps > 0 && self.masters.jt.job(jid).spec.maps() == 0 {
            self.job_results[index] = Some((sched.now(), false));
            self.finished_jobs += 1;
            if self.finished_jobs == self.schedule.len() {
                self.workload_end = Some(sched.now());
                self.phase = RunPhase::Done;
            }
        }
    }

    /// Elastic resize (§IV-C): growing submits more glidein requests;
    /// shrinking removes queued requests first, then the newest workers.
    fn on_resize_pool(&mut self, sched: &mut Scheduler<'_, Event>, delta: i64) {
        let Some(mut grid) = self.grid.take() else {
            return; // fixed clusters don't resize
        };
        let out = if delta >= 0 {
            self.target_nodes += delta as usize;
            grid.submit_workers(sched.now(), delta as usize)
        } else {
            let shrink = (-delta) as usize;
            self.target_nodes = self.target_nodes.saturating_sub(shrink);
            grid.remove_workers(sched.now(), shrink, &mut self.topo)
        };
        self.grid = Some(grid);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Core, "pool_resize")
                .with("delta", delta)
                .with("target", self.target_nodes)
        });
        for (d, e) in out.defer {
            sched.after(d, Event::Grid(e));
        }
        for note in out.notes {
            match note {
                GridNote::NodeStarted { node } => self.on_node_started(node, sched),
                GridNote::NodeLost { node, reason } => self.on_node_lost(node, reason, sched),
            }
        }
    }

    /// One controller step of the elastic feedback loop (tentpole of
    /// extension X12): observe the task backlog and pool state, let the
    /// deterministic [`ElasticController`] pick a resize, and apply it
    /// through the same grid paths an operator's `ResizePool` would use.
    fn on_elastic_tick(&mut self, sched: &mut Scheduler<'_, Event>) {
        let decision = {
            let (Some(ctl), Some(grid)) = (self.elastic.as_mut(), self.grid.as_ref()) else {
                return;
            };
            let b = self.masters.jt.backlog();
            let snap = PoolSnapshot {
                reported_live: self.masters.jt.reported_live(),
                outstanding: grid.outstanding_count(),
                pending_maps: b.pending_maps,
                running_maps: b.running_maps,
                pending_reduces: b.pending_reduces,
                running_reduces: b.running_reduces,
                active_jobs: b.active_jobs,
            };
            ctl.decide(sched.now(), &snap)
        };
        match decision {
            ElasticDecision::Hold => {}
            ElasticDecision::Grow(n) => {
                self.elastic_actions.push((sched.now(), n as i64));
                self.tracer.emit(|| {
                    TraceEvent::new(Layer::Core, "elastic_grow")
                        .with("nodes", n)
                        .with("target", self.target_nodes + n)
                });
                self.on_resize_pool(sched, n as i64);
            }
            ElasticDecision::Shrink(n) => {
                let victims = self.shrink_victims(sched.now(), n);
                self.elastic_actions.push((sched.now(), -(n as i64)));
                self.tracer.emit(|| {
                    TraceEvent::new(Layer::Core, "elastic_shrink")
                        .with("nodes", n)
                        .with("eligible", victims.len())
                });
                self.on_shrink_preferring(sched, n, &victims);
            }
        }
    }

    /// Rank the running workers the controller may reclaim, most
    /// expendable first: highest decayed site failure score (hog-sched)
    /// breaks toward churny sites, newest node id breaks ties. Busy
    /// trackers and nodes hosting the only live replica of any block are
    /// excluded outright — reclaiming either converts a voluntary shrink
    /// into rescheduling churn or data loss.
    /// Rank release candidates for a shrink of up to `n` nodes: idle
    /// trackers only, churn-prone sites first. Selection is batch-aware:
    /// a candidate joins the victim list only if every block it stores
    /// keeps at least one live replica *outside the list*, so a large
    /// shrink can never collectively erase a block that each victim
    /// individually appeared to leave safe.
    fn shrink_victims(&self, now: SimTime, n: usize) -> Vec<NodeId> {
        let mut ranked: Vec<(f64, NodeId)> = self
            .daemons_up
            .iter()
            .copied()
            .filter(|n| !self.zombies.contains(n))
            .filter(|&n| !self.masters.jt.tracker_busy(n))
            .map(|n| (self.masters.jt.site_penalty(self.topo.site_of(n), now), n))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
        let mut victims: Vec<NodeId> = Vec::with_capacity(n);
        let mut chosen: HashSet<NodeId> = HashSet::new();
        for (_, node) in ranked {
            if victims.len() == n {
                break;
            }
            if self.replicas_survive_without(node, &chosen) {
                chosen.insert(node);
                victims.push(node);
            }
        }
        victims
    }

    /// Whether every block on `node` keeps enough live replicas after
    /// removing `node` and every already-planned victim. With the
    /// availability policy off "enough" is the legacy one survivor; when
    /// armed the floor rises to [`AvailabilityPolicy::shrink_floor`]
    /// (half the block's target) so an elastic shrink can't collapse an
    /// adaptively-thin block down to a single copy on a churny site.
    ///
    /// [`AvailabilityPolicy::shrink_floor`]: hog_hdfs::AvailabilityPolicy::shrink_floor
    fn replicas_survive_without(&self, node: NodeId, planned: &HashSet<NodeId>) -> bool {
        let policy = self.cfg.hdfs.availability;
        let Some(dn) = self.masters.nn.datanode(node) else {
            return true;
        };
        dn.blocks.iter().all(|&b| {
            let meta = self.masters.nn.block(b);
            if meta.expected == 0 {
                return true;
            }
            let floor = policy.map_or(1, |p| p.shrink_floor(meta.expected));
            meta.replicas
                .iter()
                .filter(|r| **r != node && !planned.contains(r))
                .take(floor)
                .count()
                >= floor
        })
    }

    /// Shrink by `n`, but only ever killing nodes from `victims` (the
    /// grid still cancels queued/in-flight requests first). When fewer
    /// eligible victims than `n` exist the shrink under-delivers and the
    /// controller retries after its cooldown.
    fn on_shrink_preferring(
        &mut self,
        sched: &mut Scheduler<'_, Event>,
        n: usize,
        victims: &[NodeId],
    ) {
        let Some(mut grid) = self.grid.take() else {
            return;
        };
        self.target_nodes = self.target_nodes.saturating_sub(n);
        let out = grid.remove_workers_preferring(sched.now(), n, &mut self.topo, victims);
        self.grid = Some(grid);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Core, "pool_resize")
                .with("delta", -(n as i64))
                .with("target", self.target_nodes)
        });
        for (d, e) in out.defer {
            sched.after(d, Event::Grid(e));
        }
        for note in out.notes {
            match note {
                GridNote::NodeStarted { node } => self.on_node_started(node, sched),
                // The controller picked these nodes, so they retire
                // gracefully instead of crashing.
                GridNote::NodeLost {
                    node,
                    reason: LossReason::Removed,
                } => self.on_node_decommissioned(node, sched),
                GridNote::NodeLost { node, reason } => self.on_node_lost(node, reason, sched),
            }
        }
    }

    /// A controller-initiated release. Unlike [`Cluster::on_node_lost`]
    /// this is voluntary: the JobTracker is told immediately (no 30 s
    /// death detector), the adaptive replication monitor does not count
    /// it as churn, and completed map outputs on the node are not
    /// proactively re-run — the victim filter only hands over trackers
    /// whose outputs no unfinished reduce still needs.
    fn on_node_decommissioned(&mut self, node: NodeId, sched: &mut Scheduler<'_, Event>) {
        self.daemons_up.remove(&node);
        self.zombies.remove(&node);
        self.partitioned.remove(&node);
        self.straggle.remove(&node);
        self.slots_of.remove(&node);
        self.masters.nn.mark_silent(sched.now(), node);
        let notes = self.masters.jt.decommission_tracker(sched.now(), node);
        let killed = self.net.remove_node(sched.now(), node);
        for end in killed {
            self.on_flow_end(sched, end);
        }
        self.arm_net(sched);
        self.handle_notes(sched, notes);
    }

    /// One balancer iteration: plan moves toward mean utilisation and
    /// execute them as copy-then-drop transfers.
    fn on_balancer_tick(&mut self, sched: &mut Scheduler<'_, Event>) {
        let plan = hog_hdfs::balancer::plan(&self.masters.nn, &self.topo, 0.10, 32);
        // Trims first: shedding an excess replica frees the same bytes
        // as a move without a transfer. Empty unless the availability
        // policy lowered targets below current replica counts.
        for (block, node) in plan.trims {
            hog_hdfs::balancer::apply_trim(&mut self.masters.nn, block, node);
        }
        for mv in plan.moves {
            if !self.node_reachable(mv.src) || !self.node_usable(mv.dst) {
                continue;
            }
            let fid = self
                .net
                .start_flow(sched.now(), mv.src, mv.dst, mv.bytes, 0);
            self.flows.insert(
                fid,
                FlowCtx::Balancer {
                    block: mv.block,
                    src: mv.src,
                    dst: mv.dst,
                },
            );
        }
        self.arm_net(sched);
    }

    /// One availability-policy sweep (X17): classify every site by its
    /// decayed failure score (hog-sched, via the JobTracker) and its
    /// churn profile (hog-grid), then let the namenode retarget
    /// per-block replication against the snapshot. A no-op unless
    /// `cfg.hdfs.availability` is armed and the policy's interval has
    /// elapsed.
    fn on_availability_tick(&mut self, now: SimTime) {
        let Some(policy) = self.cfg.hdfs.availability else {
            return;
        };
        if self
            .avail_last
            .is_some_and(|t| now.saturating_since(t) < policy.interval)
        {
            return;
        }
        self.avail_last = Some(now);
        let sites: Vec<SiteRisk> = self
            .topo
            .sites()
            .iter()
            .map(|info| {
                let penalty = self.masters.jt.site_penalty(info.id, now);
                let lifetime_secs = match self.site_churn(&info.name) {
                    Some((mean, churn)) => {
                        // Diurnal pressure > 1 compresses expected
                        // survival exactly as it compresses sampled
                        // lifetimes in hog-grid.
                        churn.typical_lifetime_secs(mean) / churn.pressure(now).max(0.05)
                    }
                    // CENTRAL and sites outside the grid config have no
                    // preemption process: never classified risky.
                    None => f64::INFINITY,
                };
                SiteRisk {
                    penalty,
                    lifetime_secs,
                }
            })
            .collect();
        let (raised, lowered) = self
            .masters
            .nn
            .apply_availability(AvailabilitySnapshot { sites }, &self.topo);
        if raised + lowered > 0 {
            self.avail_actions.push((now, raised, lowered));
        }
    }

    /// The configured preemption process for a site, by OSG resource
    /// name: `(exponential mean lifetime, churn model)`.
    fn site_churn(&self, name: &str) -> Option<(SimDuration, hog_grid::ChurnModel)> {
        let ResourceConfig::Grid { sites, .. } = &self.cfg.resource else {
            return None;
        };
        sites
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.node_lifetime.mean(), s.churn))
    }

    fn on_master_tick(&mut self, sched: &mut Scheduler<'_, Event>) {
        let stalled = self
            .master_stalled_until
            .is_some_and(|until| sched.now() < until)
            || self.masters.is_down();
        // Periodic checkpoint: only while the workload runs (the initial
        // checkpoint is taken at upload completion) and only from a
        // healthy master — a stalled master's checkpoint thread is just
        // as suspended as the rest of it, so a `MasterStall` delays the
        // cadence instead of snapshotting mid-stall state twice.
        if !stalled && self.phase == RunPhase::Running && self.masters.checkpoint_due(sched.now()) {
            self.masters.take_checkpoint(sched.now());
            self.tracer.emit(|| {
                TraceEvent::new(Layer::Core, "master_checkpoint")
                    .with("count", self.masters.stats.checkpoints.len())
            });
        }
        if !stalled {
            // Namenode: death detection + replication orders.
            let tick = self.masters.nn.tick(sched.now(), &self.topo);
            for ReplOrder {
                block,
                src,
                dst,
                bytes,
            } in tick.orders
            {
                if self.masters.nn.storage_failed(src) || !self.node_reachable(src) {
                    // Zombie or just-died source: the transfer fails fast.
                    self.masters.nn.repl_done(block, src, dst, false);
                    continue;
                }
                if !self.node_reachable(dst) {
                    self.masters.nn.repl_done(block, src, dst, false);
                    continue;
                }
                let fid = self.net.start_flow(sched.now(), src, dst, bytes, 0);
                self.flows.insert(fid, FlowCtx::Repl { block, src, dst });
            }
            // JobTracker: dead trackers.
            let (_dead, notes) = self.masters.jt.check_dead(sched.now());
            self.handle_notes(sched, notes);
        }
        // Series sampling (the Fig. 5 curves).
        self.reported_series
            .record(sched.now(), self.masters.jt.reported_live() as f64);
        let usable = self.daemons_up.len() - self.zombies.len();
        self.actual_series.record(sched.now(), usable as f64);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Core, "master_tick")
                .with("reported", self.masters.jt.reported_live())
                .with("usable", usable)
                .with("stalled", stalled)
        });
        self.sample_metrics(sched.now());
        // Adaptive replication (X9): scale durability with instability.
        if !stalled {
            if let Some(ad) = &mut self.adaptive {
                if let Some(factor) = ad.update(sched.now(), self.daemons_up.len().max(1)) {
                    self.masters.nn.set_default_replication(factor);
                    let files = self.input_files.clone();
                    for f in files {
                        self.masters.nn.set_file_replication(f, factor);
                    }
                    self.adaptive_changes.push((sched.now(), factor));
                }
            }
        }
        // Availability policy (X17): per-block targets tracking site
        // risk. Running phase only — the forming/upload pool has no
        // failure history to classify against yet.
        if !stalled && self.phase == RunPhase::Running {
            self.on_availability_tick(sched.now());
        }
        // Elastic pool controller: only while the workload is actually
        // running — forming/upload pools stay at the configured target,
        // and a stalled master can't see the backlog it would act on.
        if !stalled && self.phase == RunPhase::Running {
            self.on_elastic_tick(sched);
        }
        self.run_chaos_supervision(sched.now());
        self.arm_net(sched);
        sched.after(
            self.cfg.hdfs.replication_monitor_interval,
            Event::MasterTick,
        );
    }

    /// Record the current value of every registered metric (when the
    /// registry is enabled). Called once per master tick.
    fn sample_metrics(&mut self, now: SimTime) {
        if self.obs_metrics.is_none() {
            return;
        }
        let sig = self.progress_sig();
        let usable = self.daemons_up.len() - self.zombies.len();
        let zombies = self.zombies.len();
        let reported = self.masters.jt.reported_live();
        let missing = self.missing_input_blocks();
        let flows_active = self.flows.len();
        let jtc = self.masters.jt.counters();
        let target = self.target_nodes;
        let outstanding = self.grid.as_ref().map_or(0, |g| g.outstanding_count());
        let resizes = self
            .elastic
            .as_ref()
            .map_or(0, |c| c.resize_counts().0 + c.resize_counts().1);
        let fairness = self.masters.jt.jain_fairness();
        let shares: Vec<(JobId, u32)> = self.masters.jt.job_shares().collect();
        let fo = self.masters.stats.clone();
        let reads = self.masters.nn.read_count();
        let (raised, lowered, trimmed) = self.masters.nn.availability_counters();
        let replica_bytes = self.masters.nn.bytes_written();
        let m = self.obs_metrics.as_mut().unwrap();
        m.reg.set(m.pool_target, target as f64);
        m.reg.set(m.pool_outstanding, outstanding as f64);
        m.reg.set(m.elastic_resizes, resizes as f64);
        m.reg.set(m.fairness_jain, fairness);
        m.reg
            .set(m.failover_recovery_ms, fo.total_recovery.as_millis() as f64);
        m.reg.set(
            m.failover_lost_window_ms,
            fo.total_lost_window.as_millis() as f64,
        );
        m.reg
            .set(m.failover_reregistrations, fo.reregistrations as f64);
        m.reg.set(m.failover_crashes, fo.crashes as f64);
        // Per-job slot shares: register a series the first tick a job id
        // appears; completed jobs drop out of the share list and read 0.
        if let Some(max_id) = shares.iter().map(|&(j, _)| j.0 as usize).max() {
            while m.job_slots.len() <= max_id {
                let id = m
                    .reg
                    .register_owned(Layer::MapReduce, format!("job{}_slots", m.job_slots.len()));
                m.job_slots.push(id);
            }
        }
        for &id in &m.job_slots {
            m.reg.set(id, 0.0);
        }
        for &(j, s) in &shares {
            m.reg.set(m.job_slots[j.0 as usize], s as f64);
        }
        m.reg.set(m.pool_usable, usable as f64);
        m.reg.set(m.pool_reported, reported as f64);
        m.reg.set(m.zombies, zombies as f64);
        m.reg.set(m.node_starts, sig.node_starts as f64);
        m.reg.set(m.missing_blocks, missing as f64);
        m.reg.set(m.repl_completed, sig.repl_completed as f64);
        m.reg.set(m.block_reads, reads as f64);
        m.reg.set(m.repl_trims, trimmed as f64);
        m.reg.set(m.avail_raised, raised as f64);
        m.reg.set(m.avail_lowered, lowered as f64);
        m.reg.set(m.replica_bytes, replica_bytes as f64);
        m.reg.set(m.maps_done, sig.maps_done as f64);
        m.reg.set(m.reduces_done, sig.reduces_done as f64);
        m.reg.set(m.task_failures, sig.task_failures as f64);
        m.reg.set(m.jobs_finished, sig.jobs_finished as f64);
        m.reg.set(m.sched_node_local, jtc.node_local as f64);
        m.reg.set(m.sched_rack_local, jtc.rack_local as f64);
        m.reg.set(m.sched_site_local, jtc.site_local as f64);
        m.reg.set(m.sched_remote, jtc.remote as f64);
        m.reg.set(m.rescue_copies, jtc.rescue_copies as f64);
        m.reg.set(m.rescue_hits, jtc.rescue_hits as f64);
        m.reg.set(m.rescue_misses, jtc.rescue_misses as f64);
        m.reg.set(m.flows_active, flows_active as f64);
        m.reg.set(m.flows_done, sig.flows_finished as f64);
        m.reg.snapshot(now);
    }

    // ==================================================================
    // Master failover: crash, standby promotion, recovery protocol
    // ==================================================================

    /// The master host dies ([`Fault::MasterCrash`]). With no failover
    /// configuration the fault is recorded and ignored; in mirror mode
    /// the synchronous standby absorbs it with zero downtime; otherwise
    /// the stack goes down and the standby's detection timeout starts.
    fn on_master_crash(&mut self, sched: &mut Scheduler<'_, Event>) {
        let went_down = self.masters.crash(sched.now());
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Core, "master_crash")
                .with("downtime", went_down)
                .with("configured", self.masters.failover().is_some())
        });
        if went_down {
            let detection = self
                .masters
                .failover()
                .expect("crash() only reports downtime when failover is configured")
                .detection_timeout;
            sched.after(detection, Event::MasterPromote);
        }
    }

    /// The standby noticed the active master is gone: restore the latest
    /// checkpoint as the live Namenode+JobTracker and reconcile it with
    /// physical reality. The crashed masters' final state (the *ghosts*)
    /// is the ground truth for what is actually on the workers' disks.
    ///
    /// Protocol, in order:
    ///
    /// 1. abandon every transfer the dead master orchestrated;
    /// 2. kill-all in the restored ledger (Hadoop 0.20 JT-restart model):
    ///    every attempt the checkpoint believed running is requeued;
    /// 3. align the restored ledger with outcomes the client already
    ///    observed, and schedule client resubmission of jobs whose
    ///    submission died with the crashed master (lost edit window);
    /// 4. pad attempt ordinals/job ids against the ghost so stale events
    ///    and output paths can never alias new work;
    /// 5. datanodes re-register and replay block reports (ghost block
    ///    sets = what disks really hold); unreachable nodes go silent;
    /// 6. trackers re-register with fresh heartbeats; scratch accounting
    ///    is rebuilt from the surviving ledger.
    fn on_master_promote(&mut self, sched: &mut Scheduler<'_, Event>) {
        let now = sched.now();
        let Some(promoted) = self.masters.promote(now) else {
            return; // stale event: the stack was not down
        };
        let ghost_nn = promoted.ghost_nn;
        let ghost_jt = promoted.ghost_jt;

        // 1. Every in-flight transfer was orchestrated by the dead
        // master (replication orders, shuffle fetches it planned, write
        // pipelines it allocated): abandon them all. Completions that
        // were already queued find no context and fall through.
        let active: Vec<FlowId> = {
            let mut v: Vec<FlowId> = self.flows.keys().copied().collect();
            v.sort_by_key(|f| f.0);
            v
        };
        for fid in active {
            self.net.cancel_flow(now, fid);
        }
        self.flows.clear();
        self.attempt_flows.clear();
        self.writes.clear();
        self.map_meta.clear();
        self.reduce_out.clear();

        // 2. Kill-all in the restored ledger.
        let restored_jobs = self.masters.jt.job_count();
        let killed = self.masters.jt.recover_kill_all();

        // 3. Reconcile with what the client observed. Jobs the mediator
        // already recorded terminal (completed after the checkpoint,
        // before the crash) stay terminal — the client has the answer.
        // Jobs submitted after the checkpoint are gone from the restored
        // ledger entirely: their ids are retired and, unless they
        // finished before the crash, the client resubmits after backoff.
        let mut entries: Vec<(JobId, usize)> =
            self.job_of_schedule.iter().map(|(&j, &i)| (j, i)).collect();
        entries.sort_by_key(|&(j, i)| (j.0, i));
        let mut resubmitted = 0u64;
        for (jid, idx) in entries {
            if (jid.0 as usize) < restored_jobs {
                if let Some((t, ok)) = self.job_results[idx] {
                    self.masters.jt.recover_force_terminal(now, jid, t, ok);
                }
            } else {
                self.job_of_schedule.remove(&jid);
                if self.job_results[idx].is_none() {
                    resubmitted += 1;
                    sched.after(self.cfg.mr.retry_backoff, Event::SubmitJob { index: idx });
                }
            }
        }

        // 4. Ordinal/id padding against the ghost.
        self.masters.jt.recover_align_with_ghost(&ghost_jt, now);

        // 5. Namenode recovery: reachable datanodes re-register and
        // replay what their disks actually hold (the ghost's view —
        // updated through the downtime as nodes came and went). Zombies
        // replay then re-flag storage failure: the restored namenode can
        // no more tell them apart than the original could (§IV-D.1).
        let reachable: Vec<NodeId> = self
            .daemons_up
            .iter()
            .copied()
            .filter(|&n| !self.partitioned.contains(&n))
            .collect();
        let mut rereg = 0u64;
        for &n in &reachable {
            let report: Vec<BlockId> = ghost_nn
                .datanode(n)
                .map(|d| d.blocks.iter().copied().collect())
                .unwrap_or_default();
            self.masters.nn.replay_block_report(now, n, &report);
            if self.zombies.contains(&n) {
                self.masters.nn.mark_storage_failed(n);
            }
            rereg += 1;
        }
        // Nodes the checkpoint believed live but that are unreachable
        // now (partitioned, or lost during the downtime) go silent; the
        // normal dead-node machinery takes it from there.
        let mut silent: Vec<NodeId> = self
            .masters
            .nn
            .datanodes()
            .filter(|&(n, d)| {
                d.liveness == DnLiveness::Live
                    && (!self.daemons_up.contains(&n) || self.partitioned.contains(&n))
            })
            .map(|(n, _)| n)
            .collect();
        silent.sort_by_key(|n| n.0);
        for n in silent {
            self.masters.nn.mark_silent(now, n);
        }
        self.masters.nn.rebuild_replication_state();

        // 6. JobTracker recovery: reachable trackers re-register with
        // fresh heartbeats (checkpoint-stale timestamps would trip mass
        // death detection on the first tick); known-but-unreachable ones
        // go silent; scratch accounting is rebuilt from the ledger.
        for &n in &reachable {
            let (m, r) = self.slots_of.get(&n).copied().unwrap_or((1, 1));
            self.masters
                .jt
                .register_tracker(now, n, self.topo.site_of(n), m, r);
            rereg += 1;
        }
        let mut tracker_silent: Vec<NodeId> = self
            .daemons_up
            .iter()
            .copied()
            .filter(|&n| self.partitioned.contains(&n) && self.masters.jt.tracker_live(n))
            .collect();
        tracker_silent.sort_by_key(|n| n.0);
        for n in tracker_silent {
            self.masters.jt.tracker_silent(now, n);
        }
        self.masters.jt.recover_rebuild_scratch();

        self.masters.stats.reregistrations += rereg;
        self.masters.stats.resubmissions += resubmitted;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Core, "master_promote")
                .with("killed_attempts", killed)
                .with("reregistrations", rereg)
                .with("resubmissions", resubmitted)
                .with("restored_jobs", restored_jobs)
        });
        self.arm_net(sched);
    }

    /// Failover accounting (crashes, promotions, recovery/lost-window
    /// durations, re-registration storms).
    pub fn failover_stats(&self) -> &crate::master::FailoverStats {
        self.masters.stats()
    }

    // ==================================================================
    // Chaos: fault injection, invariant auditing, livelock detection
    // ==================================================================

    fn site_by_name(&self, name: &str) -> Option<hog_net::SiteId> {
        self.topo
            .sites()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.id)
    }

    fn fault_name(fault: &Fault) -> &'static str {
        match fault {
            Fault::PreemptBurst { .. } => "preempt_burst",
            Fault::SitePartition { .. } => "site_partition",
            Fault::WanDegrade { .. } => "wan_degrade",
            Fault::ZombieOutbreak { .. } => "zombie_outbreak",
            Fault::Straggler { .. } => "straggler",
            Fault::MasterStall { .. } => "master_stall",
            Fault::MasterCrash => "master_crash",
            Fault::CorruptAccounting { .. } => "corrupt_accounting",
            Fault::PoolPartition { .. } => "pool_partition",
        }
    }

    /// Apply the `index`-th fault of the configured plan.
    fn on_chaos(&mut self, sched: &mut Scheduler<'_, Event>, index: u32) {
        let Some(tf) = self.cfg.chaos.plan.faults().get(index as usize).cloned() else {
            return;
        };
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Chaos, "chaos_inject")
                .with("index", index)
                .with("fault", Self::fault_name(&tf.fault))
        });
        match tf.fault {
            Fault::PreemptBurst { site, count } => {
                let Some(site) = self.site_by_name(&site) else {
                    return;
                };
                let Some(mut grid) = self.grid.take() else {
                    return;
                };
                let out = grid.inject_preemptions(sched.now(), site, count, &mut self.topo);
                self.grid = Some(grid);
                for (d, e) in out.defer {
                    sched.after(d, Event::Grid(e));
                }
                for note in out.notes {
                    match note {
                        GridNote::NodeStarted { node } => self.on_node_started(node, sched),
                        GridNote::NodeLost { node, reason } => {
                            self.on_node_lost(node, reason, sched)
                        }
                    }
                }
            }
            Fault::SitePartition { site, .. } => {
                let Some(site) = self.site_by_name(&site) else {
                    return;
                };
                let members: Vec<NodeId> = self
                    .daemons_up
                    .iter()
                    .copied()
                    .filter(|&n| self.topo.site_of(n) == site && !self.partitioned.contains(&n))
                    .collect();
                for &n in &members {
                    self.partitioned.insert(n);
                    // Daemons stay up, but nothing gets through: both
                    // masters see silence, and every flow touching the
                    // node dies.
                    self.masters.nn.mark_silent(sched.now(), n);
                    self.masters.jt.tracker_silent(sched.now(), n);
                    let killed = self.net.remove_node(sched.now(), n);
                    for end in killed {
                        self.on_flow_end(sched, end);
                    }
                }
                self.partition_members.insert(index, members);
                self.arm_net(sched);
            }
            Fault::WanDegrade { factor, .. } => {
                self.net.set_wan_factor(sched.now(), factor);
                self.arm_net(sched);
            }
            Fault::ZombieOutbreak { count } => {
                let mut candidates: Vec<NodeId> = self
                    .daemons_up
                    .iter()
                    .copied()
                    .filter(|&n| !self.zombies.contains(&n) && !self.partitioned.contains(&n))
                    .collect();
                self.chaos_rng.shuffle(&mut candidates);
                for n in candidates.into_iter().take(count) {
                    self.zombies.insert(n);
                    self.masters.nn.mark_storage_failed(n);
                }
            }
            Fault::Straggler {
                count,
                cpu_factor,
                disk_factor,
            } => {
                let mut candidates: Vec<NodeId> = self
                    .daemons_up
                    .iter()
                    .copied()
                    .filter(|n| !self.straggle.contains_key(n))
                    .collect();
                self.chaos_rng.shuffle(&mut candidates);
                for n in candidates.into_iter().take(count) {
                    self.straggle.insert(n, (cpu_factor, disk_factor));
                }
            }
            Fault::MasterStall { duration } => {
                self.master_stalled_until = Some(sched.now() + duration);
            }
            Fault::MasterCrash => self.on_master_crash(sched),
            Fault::CorruptAccounting { delta_bytes } => {
                // Deliberately breaks the namenode's books so the auditor
                // has something real to catch (negative-testing fault).
                if let Some(&n) = self.daemons_up.iter().next() {
                    self.masters.nn.debug_skew_used(n, delta_bytes);
                }
            }
            Fault::PoolPartition { .. } => {
                // The inter-pool WAN lives above a standalone cluster; the
                // federation executor intercepts this fault and freezes
                // its `WanTier`. Here it is recorded (trace above) only.
            }
        }
    }

    /// End of a windowed fault (`SitePartition` heals, `WanDegrade`
    /// lifts).
    fn on_chaos_end(&mut self, sched: &mut Scheduler<'_, Event>, index: u32) {
        let Some(tf) = self.cfg.chaos.plan.faults().get(index as usize).cloned() else {
            return;
        };
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Chaos, "chaos_heal")
                .with("index", index)
                .with("fault", Self::fault_name(&tf.fault))
        });
        match tf.fault {
            Fault::SitePartition { .. } => {
                let members = self.partition_members.remove(&index).unwrap_or_default();
                for n in members {
                    self.partitioned.remove(&n);
                    if !self.daemons_up.contains(&n) {
                        continue; // lost for real while cut off
                    }
                    self.net.register_node(n, self.topo.site_of(n));
                    let dn_dead = self
                        .masters
                        .nn
                        .datanode(n)
                        .is_none_or(|d| d.liveness == DnLiveness::Dead);
                    if dn_dead {
                        // The namenode wrote the node off (and dropped its
                        // block accounting); it reports back in empty, as
                        // a restarted datanode would.
                        self.masters.nn.register_datanode(sched.now(), n);
                        if self.zombies.contains(&n) {
                            self.masters.nn.mark_storage_failed(n);
                        }
                    } else {
                        self.masters.nn.mark_live(sched.now(), n);
                    }
                    if !self.masters.jt.tracker_live(n) {
                        let (m, r) = self.slots_of.get(&n).copied().unwrap_or((1, 1));
                        self.masters.jt.register_tracker(
                            sched.now(),
                            n,
                            self.topo.site_of(n),
                            m,
                            r,
                        );
                    }
                }
                self.arm_net(sched);
            }
            Fault::WanDegrade { .. } => {
                self.net.set_wan_factor(sched.now(), 1.0);
                self.arm_net(sched);
            }
            _ => {}
        }
    }

    /// Per-master-tick chaos oversight: run the invariant audit and feed
    /// the livelock watchdog. The first failure freezes the run.
    fn run_chaos_supervision(&mut self, now: SimTime) {
        if self.chaos_failure.is_some() {
            return;
        }
        // While the master stack is down its liveness beliefs are frozen
        // at crash time; auditing a dead master against live ground truth
        // is meaningless (promotion reconciles the views).
        if self.auditor.is_some() && !self.masters.is_down() {
            let mut violations =
                hog_chaos::collect_violations(&[&self.net, &self.masters.nn, &self.masters.jt]);
            violations.extend(self.cross_layer_violations());
            if let Some(aud) = &mut self.auditor {
                if let Some(f) = aud.observe(now, violations) {
                    self.chaos_failure = Some(f);
                }
            }
        }
        if self.chaos_failure.is_none() && self.watchdog.is_some() && self.phase != RunPhase::Done {
            let sig = self.progress_sig();
            if let Some(wd) = &mut self.watchdog {
                if let Some(f) = wd.observe(now, sig) {
                    self.chaos_failure = Some(f);
                }
            }
        }
        // A fresh failure gets the flight-recorder tail appended to its
        // dump. The tail is captured before any further event is emitted,
        // so its last entry precedes (or coincides with) the failure time.
        if self.chaos_failure.is_some() && self.tracer.enabled() {
            let tail = self.tracer.tail(self.cfg.obs.dump_tail);
            let rendered = render_tail(&tail, self.tracer.events_recorded(), self.tracer.dropped());
            if let Some(f) = &mut self.chaos_failure {
                f.append_context(&rendered);
            }
        }
    }

    /// Invariants no single layer can check: the masters' liveness views
    /// must agree with the mediator's ground truth.
    fn cross_layer_violations(&self) -> Vec<Violation> {
        let mut v = Vec::new();
        for (n, dn) in self.masters.nn.datanodes() {
            if dn.liveness == DnLiveness::Live && !self.node_reachable(n) {
                v.push(Violation::new(
                    "cluster",
                    format!("namenode believes {n:?} is Live but it is unreachable"),
                ));
            }
        }
        for &n in self.daemons_up.iter() {
            if self.masters.jt.tracker_live(n) && self.partitioned.contains(&n) {
                v.push(Violation::new(
                    "cluster",
                    format!("jobtracker believes {n:?} is Live across a partition"),
                ));
            }
        }
        v
    }

    /// Snapshot every counter that moves when the cluster does real work.
    fn progress_sig(&self) -> ProgressSig {
        let mut maps_done = 0u64;
        let mut reduces_done = 0u64;
        for i in 0..self.masters.jt.job_count() {
            let job = self.masters.jt.job(JobId(i as u32));
            maps_done += job.maps_done as u64;
            reduces_done += job.reduces_done as u64;
        }
        let jtc = self.masters.jt.counters();
        ProgressSig {
            phase: self.phase as u8,
            pool_size: self
                .daemons_up
                .iter()
                .filter(|&&n| self.node_usable(n))
                .count(),
            node_starts: self.grid.as_ref().map_or(0, |g| g.node_start_count()),
            upload_remaining: self.upload_queue.len() + self.upload_in_flight,
            jobs_finished: self.finished_jobs,
            maps_done,
            reduces_done,
            task_failures: jtc.failures,
            repl_completed: self.masters.nn.counters().0,
            flows_finished: self.flows_done,
        }
    }

    /// The structured failure that aborted this run, if the chaos layer
    /// tripped.
    pub fn chaos_failure(&self) -> Option<&ChaosFailure> {
        self.chaos_failure.as_ref()
    }

    /// Drain the structured trace (None when tracing was off).
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.tracer.take_log()
    }

    /// Extract the metrics registry (None when metrics were off).
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.obs_metrics.take().map(|m| m.reg)
    }
}

impl Model for Cluster {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        // Keep the recorder's clock current: every emit between here and
        // the next dispatch is stamped with this instant.
        self.tracer.advance(sched.now());
        match event {
            Event::Grid(g) => {
                let Some(mut grid) = self.grid.take() else {
                    return;
                };
                let out = grid.handle(sched.now(), g, &mut self.topo);
                self.grid = Some(grid);
                for (d, e) in out.defer {
                    sched.after(d, Event::Grid(e));
                }
                for note in out.notes {
                    match note {
                        GridNote::NodeStarted { node } => self.on_node_started(node, sched),
                        GridNote::NodeLost { node, reason } => {
                            self.on_node_lost(node, reason, sched)
                        }
                    }
                }
            }
            Event::NetTick => {
                self.armed_net_ticks.remove(&sched.now());
                let mut ends = std::mem::take(&mut self.flow_end_buf);
                ends.clear();
                self.net.advance_into(sched.now(), &mut ends);
                for end in ends.drain(..) {
                    self.on_flow_end(sched, end);
                }
                self.flow_end_buf = ends;
                self.arm_net(sched);
            }
            Event::MasterTick => self.on_master_tick(sched),
            Event::Heartbeat { node } => self.on_heartbeat(sched, node),
            Event::DiskCheck { node } => {
                if !self.daemons_up.contains(&node) {
                    return;
                }
                if self.zombies.contains(&node) {
                    // The self-check noticed the working directory is
                    // gone: shut down cleanly (the paper's fix).
                    self.tracer.emit(|| {
                        TraceEvent::new(Layer::Core, "zombie_detected").with("node", node.0)
                    });
                    self.shutdown_daemons(node, sched);
                } else if let Some(d) = self.cfg.hdfs.disk_check_interval {
                    sched.after(d, Event::DiskCheck { node });
                }
            }
            Event::MapInputReady { attempt } => {
                if !self.masters.jt.attempt_active(attempt) {
                    return;
                }
                let Some(meta) = self.map_meta.get(&attempt).copied() else {
                    return;
                };
                if !self.node_reachable(meta.node) {
                    return;
                }
                let (cpu, _) = self.slow(meta.node);
                let strag = self.straggler_factor();
                sched.after(
                    SimDuration::from_secs_f64(meta.cpu_secs * cpu * strag),
                    Event::MapComputeDone { attempt },
                );
            }
            Event::MapComputeDone { attempt } => self.on_map_compute_done(sched, attempt),
            Event::MapSpillDone { attempt } => self.on_map_spill_done(sched, attempt),
            Event::ReduceSortDone { attempt } => self.on_reduce_sort_done(sched, attempt),
            Event::FetchTimeout { attempt, order } => {
                if !self.masters.jt.attempt_active(attempt) {
                    return;
                }
                self.masters.jt.fetch_failed(attempt, order, &self.topo);
                self.drive_reduce(sched, attempt);
            }
            Event::AttemptDoomed { attempt, reason } => {
                if !self.masters.jt.attempt_active(attempt) {
                    return;
                }
                let fr = match reason {
                    DoomReason::Zombie => {
                        self.counters.zombie_task_failures += 1;
                        FailReason::ZombieNode
                    }
                    DoomReason::LostBlock => {
                        self.counters.lost_block_failures += 1;
                        FailReason::LostBlock
                    }
                };
                let notes = self.masters.jt.attempt_failed(sched.now(), attempt, fr);
                self.handle_notes(sched, notes);
            }
            Event::SubmitJob { index } => {
                self.pump_dispatch(sched);
                if self.cfg.pool.is_some() {
                    // Pool mode: the fired submission goes to the
                    // federation's meta-scheduler, which picks a pool and
                    // calls `external_submit` there at this same instant.
                    self.pending_routes.push(index);
                } else {
                    self.on_submit_job(sched, index)
                }
            }
            Event::PumpUpload => self.pump_upload(sched),
            Event::ResizePool { delta } => self.on_resize_pool(sched, delta),
            Event::BalancerTick => self.on_balancer_tick(sched),
            Event::Chaos { index } => {
                self.pump_dispatch(sched);
                self.on_chaos(sched, index)
            }
            Event::ChaosEnd { index } => {
                self.pump_dispatch(sched);
                self.on_chaos_end(sched, index)
            }
            Event::MasterPromote => self.on_master_promote(sched),
        }
    }

    /// Heartbeats coalesce: the stagger spreads first fires across the
    /// interval, but at thousands of nodes many timers still share an
    /// instant (at 10k nodes ~3 heartbeats land per simulated ms), and
    /// one dispatch can drain the whole same-time run. Everything else
    /// keeps per-event dispatch.
    fn batchable(&self, event: &Event) -> bool {
        matches!(event, Event::Heartbeat { .. })
    }

    /// Drain a same-instant run of heartbeats in one dispatch, hoisting
    /// the per-batch constants a single heartbeat would recompute: the
    /// trace clock and the master-side delivery predicates. A heartbeat
    /// only mutates JobTracker/worker state — nothing in it stalls,
    /// crashes or revives the master, so reading those predicates once
    /// per instant is decision-identical to re-reading them per event.
    /// Per-node gates (daemon up, partitioned) stay inside the loop.
    fn handle_batch(
        &mut self,
        events: &mut std::collections::VecDeque<Event>,
        sched: &mut Scheduler<'_, Event>,
    ) {
        self.tracer.advance(sched.now());
        let stalled = self
            .master_stalled_until
            .is_some_and(|until| sched.now() < until);
        let master_reachable = !stalled && !self.masters.is_down();
        let hb = self.cfg.mr.heartbeat_interval;
        let mut assignments = std::mem::take(&mut self.assign_buf);
        while !self.finished() {
            let Some(event) = events.pop_front() else { break };
            let Event::Heartbeat { node } = event else {
                // `batchable` admits only heartbeats; keep the contract
                // anyway.
                self.handle(event, sched);
                continue;
            };
            if !self.daemons_up.contains(&node) {
                continue; // daemon gone: heartbeats stop
            }
            if master_reachable && !self.partitioned.contains(&node) {
                self.masters
                    .jt
                    .heartbeat_into(sched.now(), node, &self.topo, &mut assignments);
                self.start_assignments(sched, node, &assignments);
            }
            sched.after(hb, Event::Heartbeat { node });
        }
        assignments.clear();
        self.assign_buf = assignments;
    }

    fn finished(&self) -> bool {
        // A chaos failure (invariant violation or livelock) freezes the
        // run immediately so the dump reflects the moment of detection.
        self.phase == RunPhase::Done || self.chaos_failure.is_some()
    }
}
