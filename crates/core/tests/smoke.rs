//! End-to-end smoke tests: small workloads through the full stack.

use hog_core::driver::{assert_finished, run_workload};
use hog_core::{ClusterConfig, PlacementKind};
use hog_sim_core::SimDuration;
use hog_workload::facebook::Bin;
use hog_workload::SubmissionSchedule;

/// A small synthetic workload: `jobs` jobs of `maps`×`reduces`.
fn tiny_schedule(jobs: u32, maps: u32, reduces: u32, seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 1,
        maps_at_facebook: (maps, maps),
        fraction_at_facebook: 1.0,
        maps,
        jobs_in_benchmark: jobs,
        reduces,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

#[test]
fn dedicated_cluster_runs_tiny_workload() {
    let schedule = tiny_schedule(4, 3, 1, 7);
    let r = run_workload(
        ClusterConfig::dedicated(1),
        &schedule,
        SimDuration::from_secs(4 * 3600),
    );
    assert_finished(&r);
    assert_eq!(r.jobs_succeeded(), 4, "{:?}", r.jobs);
    assert!(r.response_time.is_some());
    let resp = r.response_time.unwrap().as_secs_f64();
    assert!(resp > 0.0 && resp < 4.0 * 3600.0, "response {resp}");
    // Locality should be high on a loaded cluster with rack-aware
    // placement: every node holds many blocks.
    let c = r.jt;
    assert!(c.node_local + c.site_local + c.remote >= 12);
}

#[test]
fn hog_cluster_runs_tiny_workload() {
    let schedule = tiny_schedule(4, 3, 1, 8);
    let cfg = ClusterConfig::hog(12, 2)
        // effectively no churn for the smoke test
        .with_mean_lifetime(SimDuration::from_secs(10_000_000));
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(8 * 3600));
    assert_finished(&r);
    assert_eq!(r.jobs_succeeded(), 4, "{:?}", r.jobs);
    assert!(r.grid.is_some());
}

#[test]
fn hog_with_churn_still_finishes() {
    let schedule = tiny_schedule(5, 4, 2, 9);
    let cfg = ClusterConfig::hog(15, 3).with_mean_lifetime(SimDuration::from_secs(1200));
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(12 * 3600));
    assert_finished(&r);
    // Under churn, jobs should still overwhelmingly succeed thanks to
    // replication 10 + fast failure detection.
    assert!(
        r.jobs_succeeded() >= 4,
        "succeeded {}/5, counters {:?}",
        r.jobs_succeeded(),
        r.cluster
    );
    let (pre, _, _) = r.grid.unwrap();
    assert!(pre > 0, "churn expected");
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let schedule = tiny_schedule(3, 2, 1, 5);
        let cfg = ClusterConfig::hog(8, 11).with_mean_lifetime(SimDuration::from_secs(3600));
        let r = run_workload(cfg, &schedule, SimDuration::from_secs(8 * 3600));
        (
            r.response_time.map(|d| d.as_millis()),
            r.events,
            r.jobs_succeeded(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn placement_policies_all_work_end_to_end() {
    for (i, p) in [
        PlacementKind::SiteAware,
        PlacementKind::RackAware,
        PlacementKind::RackOblivious,
    ]
    .into_iter()
    .enumerate()
    {
        let schedule = tiny_schedule(2, 2, 1, 20 + i as u64);
        let cfg = ClusterConfig::hog(10, 30 + i as u64)
            .with_mean_lifetime(SimDuration::from_secs(10_000_000))
            .with_placement(p.clone());
        let r = run_workload(cfg, &schedule, SimDuration::from_secs(8 * 3600));
        assert_finished(&r);
        assert_eq!(r.jobs_succeeded(), 2, "policy {p:?}");
    }
}

#[test]
fn elastic_resize_and_balancer_mid_run() {
    use hog_core::driver::run_workload_with_events;
    use hog_core::event::Event;
    use hog_sim_core::SimTime;

    let schedule = tiny_schedule(6, 4, 2, 31);
    let cfg = ClusterConfig::hog(10, 41).with_mean_lifetime(SimDuration::from_secs(10_000_000));
    // Grow the pool by 15 nodes shortly after the workload starts, then
    // run the balancer to spread data onto the new nodes.
    // Early enough to land while the workload is still active.
    let extra = vec![
        (SimTime::from_secs(300), Event::ResizePool { delta: 15 }),
        (SimTime::from_secs(600), Event::BalancerTick),
        (SimTime::from_secs(800), Event::BalancerTick),
    ];
    let r = run_workload_with_events(cfg, &schedule, SimDuration::from_secs(12 * 3600), extra);
    assert_finished(&r);
    assert_eq!(r.jobs_succeeded(), 6, "{:?}", r.stuck_jobs);
    // The grid must have started more nodes than the original target.
    let (_, _, starts) = r.grid.unwrap();
    assert!(starts >= 25, "pool should have grown: {starts} starts");
}

#[test]
fn shrink_pool_mid_run_still_finishes() {
    use hog_core::driver::run_workload_with_events;
    use hog_core::event::Event;
    use hog_sim_core::SimTime;

    let schedule = tiny_schedule(4, 3, 1, 32);
    let cfg = ClusterConfig::hog(20, 42).with_mean_lifetime(SimDuration::from_secs(10_000_000));
    let extra = vec![(SimTime::from_secs(400), Event::ResizePool { delta: -8 })];
    let r = run_workload_with_events(cfg, &schedule, SimDuration::from_secs(12 * 3600), extra);
    assert_finished(&r);
    assert_eq!(r.jobs_succeeded(), 4, "{:?}", r.stuck_jobs);
}

#[test]
fn adaptive_replication_scales_with_churn() {
    // Heavy churn: the controller should push the factor up from its
    // floor within the first half hour.
    let schedule = tiny_schedule(6, 4, 2, 51);
    let cfg = ClusterConfig::hog(25, 61)
        .with_mean_lifetime(SimDuration::from_secs(900))
        .with_adaptive_replication(3, 10);
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(24 * 3600));
    assert_finished(&r);
    // The run result doesn't carry the change log, so assert indirectly:
    // jobs survive churn that replication 3 alone would struggle with,
    // and at least the run completed with ≥5/6 jobs.
    assert!(
        r.jobs_succeeded() >= 5,
        "adaptive replication should carry the workload: {}/6",
        r.jobs_succeeded()
    );
}
