//! Elastic-controller tests at the full-cluster level: the closed loop
//! actually resizes the pool, identical elastic runs are bit-identical,
//! a controller clamped to the static pool size is inert, and the
//! fairness / pool gauges flow through hog-obs without perturbing the
//! simulation.

use hog_core::driver::{assert_finished, run_workload, RunResult};
use hog_core::ClusterConfig;
use hog_sim_core::SimDuration;
use hog_workload::facebook::Bin;
use hog_workload::SubmissionSchedule;

/// A small synthetic workload: `jobs` jobs of `maps`×`reduces`.
fn tiny_schedule(jobs: u32, maps: u32, reduces: u32, seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 1,
        maps_at_facebook: (maps, maps),
        fraction_at_facebook: 1.0,
        maps,
        jobs_in_benchmark: jobs,
        reduces,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

/// Everything outcome-defining a run produces, for bit-identity checks.
type Outcome = (Option<u64>, u64, usize, [u64; 6], Vec<(u64, i64)>);

fn outcome(r: &RunResult) -> Outcome {
    (
        r.response_time.map(|d| d.as_millis()),
        r.events,
        r.jobs_succeeded(),
        [
            r.jt.node_local,
            r.jt.rack_local,
            r.jt.site_local,
            r.jt.remote,
            r.jt.speculative,
            r.jt.failures,
        ],
        r.elastic_actions
            .iter()
            .map(|&(t, d)| (t.as_secs_f64().to_bits(), d))
            .collect(),
    )
}

#[test]
fn controller_grows_an_undersized_pool() {
    let schedule = tiny_schedule(6, 30, 2, 11);
    let cfg = ClusterConfig::hog(10, 5).with_elastic(10, 80);
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(12 * 3600));
    assert_finished(&r);
    let grows: i64 = r.elastic_actions.iter().map(|&(_, d)| d.max(0)).sum();
    assert!(
        grows > 0,
        "backlogged pool never grew: {:?}",
        r.elastic_actions
    );
    // Requested pool size stays inside the configured bounds throughout.
    let mut target = 10i64;
    for &(_, d) in &r.elastic_actions {
        target += d;
        assert!((10..=80).contains(&target), "target {target} out of bounds");
    }
}

#[test]
fn elastic_runs_are_bit_identical() {
    let run = || {
        let schedule = tiny_schedule(6, 30, 2, 11);
        let cfg = ClusterConfig::hog(10, 5).with_elastic(10, 80);
        run_workload(cfg, &schedule, SimDuration::from_secs(12 * 3600))
    };
    let (a, b) = (run(), run());
    assert_finished(&a);
    assert_eq!(outcome(&a), outcome(&b), "same-seed elastic runs diverged");
}

/// With the bounds clamped to the starting size and no churn to repair,
/// the controller holds on every tick — and a run with the controller
/// wired in is bit-identical to one without it. This is the cluster-level
/// version of the scale-bench fingerprint check: the elastic wiring adds
/// nothing to a run that does not use it.
#[test]
fn clamped_controller_is_inert() {
    let run = |elastic: bool| {
        let schedule = tiny_schedule(5, 8, 1, 23);
        let mut cfg =
            ClusterConfig::hog(14, 9).with_mean_lifetime(SimDuration::from_secs(5_000_000));
        if elastic {
            cfg = cfg.with_elastic(14, 14);
        }
        run_workload(cfg, &schedule, SimDuration::from_secs(12 * 3600))
    };
    let plain = run(false);
    let clamped = run(true);
    assert_finished(&plain);
    assert!(
        clamped.elastic_actions.is_empty(),
        "clamped controller acted: {:?}",
        clamped.elastic_actions
    );
    assert_eq!(
        outcome(&plain),
        outcome(&clamped),
        "inert controller changed the simulation"
    );
}

/// The fairness index and pool gauges are observation-only: enabling
/// metrics neither changes outcomes, and the series carry sane values.
#[test]
fn fairness_and_pool_gauges_flow_through_obs() {
    let run = |metrics: bool| {
        let schedule = tiny_schedule(6, 30, 2, 11);
        let mut cfg = ClusterConfig::hog(10, 5).with_elastic(10, 80);
        if metrics {
            cfg = cfg.with_metrics();
        }
        run_workload(cfg, &schedule, SimDuration::from_secs(12 * 3600))
    };
    let plain = run(false);
    let observed = run(true);
    assert_eq!(
        outcome(&plain),
        outcome(&observed),
        "metrics changed the simulation"
    );
    let reg = observed.metrics.expect("metrics registry");
    let fairness = reg
        .find("mapreduce/fairness_jain")
        .expect("fairness series");
    assert!(
        fairness
            .points()
            .iter()
            .all(|&(_, v)| (0.0..=1.0).contains(&v)),
        "Jain index out of [0, 1]"
    );
    assert!(
        fairness.points().iter().any(|&(_, v)| v > 0.0),
        "fairness never sampled above zero"
    );
    let target = reg.find("core/pool_target").expect("pool_target series");
    assert!(
        target.points().iter().any(|&(_, v)| v > 10.0),
        "pool_target never rose above the floor"
    );
    // Per-job slot-share series appear once jobs run.
    assert!(
        reg.iter_series()
            .any(|(name, _)| name.starts_with("mapreduce/job") && name.ends_with("_slots")),
        "no per-job slot-share series registered"
    );
}
