//! Scheduler-policy tests at the full-cluster level: every policy is
//! deterministic (same seed → bit-identical outcome), every policy
//! completes the workload, and the delay scheduler never does worse on
//! node-locality than FIFO (the strict locality *win* on the contended
//! Facebook workload is tracked by `hog-bench --bin sched`; see
//! EXPERIMENTS.md).

use hog_core::driver::{assert_finished, run_workload};
use hog_core::{ClusterConfig, SchedPolicy};
use hog_sim_core::SimDuration;
use hog_workload::facebook::Bin;
use hog_workload::SubmissionSchedule;

fn tiny_schedule(jobs: u32, maps: u32, reduces: u32, seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 1,
        maps_at_facebook: (maps, maps),
        fraction_at_facebook: 1.0,
        maps,
        jobs_in_benchmark: jobs,
        reduces,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

/// Everything outcome-defining a run produces, for bit-identity checks.
fn outcome(policy: SchedPolicy) -> (Option<u64>, u64, usize, [u64; 6]) {
    let schedule = tiny_schedule(4, 4, 1, 13);
    let cfg = ClusterConfig::hog(10, 17)
        .with_scheduler(policy)
        .with_mean_lifetime(SimDuration::from_secs(2400));
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(12 * 3600));
    assert_finished(&r);
    (
        r.response_time.map(|d| d.as_millis()),
        r.events,
        r.jobs_succeeded(),
        [
            r.jt.node_local,
            r.jt.rack_local,
            r.jt.site_local,
            r.jt.remote,
            r.jt.speculative,
            r.jt.failures,
        ],
    )
}

#[test]
fn every_policy_is_deterministic() {
    for policy in [SchedPolicy::Fifo, SchedPolicy::Fair, SchedPolicy::FailureAware] {
        let a = outcome(policy);
        let b = outcome(policy);
        assert_eq!(a, b, "same-seed runs diverged under {policy:?}");
        assert_eq!(a.2, 4, "jobs lost under {policy:?}");
    }
}

#[test]
fn policies_are_actually_wired_through() {
    // FIFO and fair must take different decisions on a contended pool —
    // if the config knob were ignored, these would be identical runs.
    let fifo = outcome(SchedPolicy::Fifo);
    let fair = outcome(SchedPolicy::Fair);
    assert_ne!(
        fifo.3, fair.3,
        "fair scheduler produced FIFO's exact locality profile; knob ignored?"
    );
}

#[test]
fn delay_scheduling_does_not_lose_node_locality() {
    let fifo = outcome(SchedPolicy::Fifo);
    let fair = outcome(SchedPolicy::Fair);
    let share = |c: [u64; 6]| {
        let total: u64 = c[..4].iter().sum();
        (c[0] + c[1]) as f64 / total.max(1) as f64
    };
    assert!(
        share(fair.3) >= share(fifo.3),
        "delay scheduling lost locality: fair {:?} vs fifo {:?}",
        fair.3,
        fifo.3
    );
}
