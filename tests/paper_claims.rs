//! Cross-crate integration tests for the paper's qualitative claims,
//! scaled down to run quickly in debug builds. The full-scale quantitative
//! reproduction lives in the `hog-bench` binaries (`fig4`, `fig5`,
//! `ablations`); heavier versions of these checks are `#[ignore]`d and run
//! in release via `cargo test --release -- --ignored`.

use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

/// A scaled-down Facebook-like mix: same shape, ~1/8 the work.
fn mini_facebook(seed: u64) -> SubmissionSchedule {
    let bins = [
        Bin { number: 1, maps_at_facebook: (1, 1), fraction_at_facebook: 0.4, maps: 1, jobs_in_benchmark: 5, reduces: 1 },
        Bin { number: 3, maps_at_facebook: (3, 20), fraction_at_facebook: 0.3, maps: 10, jobs_in_benchmark: 3, reduces: 5 },
        Bin { number: 4, maps_at_facebook: (21, 60), fraction_at_facebook: 0.2, maps: 30, jobs_in_benchmark: 2, reduces: 8 },
    ];
    SubmissionSchedule::from_bins(&bins, seed)
}

const HORIZON: SimDuration = SimDuration::from_secs(24 * 3600);

#[test]
fn more_hog_nodes_means_faster_workload() {
    let schedule = mini_facebook(3);
    let small = run_workload(ClusterConfig::hog(20, 1), &schedule, HORIZON);
    let large = run_workload(ClusterConfig::hog(80, 1), &schedule, HORIZON);
    let (s, l) = (
        small.response_time.unwrap().as_secs_f64(),
        large.response_time.unwrap().as_secs_f64(),
    );
    assert!(
        l < s,
        "80 nodes ({l}s) should beat 20 nodes ({s}s)"
    );
    assert_eq!(small.jobs_succeeded(), schedule.len());
    assert_eq!(large.jobs_succeeded(), schedule.len());
}

#[test]
fn hog_survives_churn_that_kills_low_replication() {
    let schedule = mini_facebook(4);
    let churn = SimDuration::from_secs(20 * 60);
    // HOG settings (replication 10, 30 s detection).
    let hog = run_workload(
        ClusterConfig::hog(30, 2).with_mean_lifetime(churn),
        &schedule,
        HORIZON,
    );
    // Same churn with replication 1: data evaporates.
    let fragile = run_workload(
        ClusterConfig::hog(30, 2)
            .with_mean_lifetime(churn)
            .with_replication(1),
        &schedule,
        HORIZON,
    );
    assert_eq!(
        hog.jobs_succeeded(),
        schedule.len(),
        "replication 10 should carry the workload through churn"
    );
    assert!(
        fragile.nn_counters.2 > 0 || fragile.jobs_failed() > 0,
        "replication 1 under churn must lose blocks or jobs \
         (lost={}, failed={})",
        fragile.nn_counters.2,
        fragile.jobs_failed()
    );
}

#[test]
fn zombie_fix_restores_throughput() {
    let schedule = mini_facebook(5);
    let churn = SimDuration::from_secs(25 * 60);
    let no_fix = run_workload(
        ClusterConfig::hog(25, 3)
            .with_mean_lifetime(churn)
            .with_zombies(0.5, false),
        &schedule,
        HORIZON,
    );
    let with_fix = run_workload(
        ClusterConfig::hog(25, 3)
            .with_mean_lifetime(churn)
            .with_zombies(0.5, true),
        &schedule,
        HORIZON,
    );
    // Zombies poison task execution; the disk self-check evicts them.
    assert!(
        no_fix.cluster.zombie_task_failures > 0,
        "zombie mode must cause zombie task failures"
    );
    // At this small scale response times are churn-noisy (evicting a
    // zombie briefly shrinks the pool), so the robust claim is on
    // completed work, and that both runs terminate rather than hang.
    assert!(!with_fix.stopped_early && !no_fix.stopped_early);
    assert!(
        with_fix.jobs_succeeded() >= no_fix.jobs_succeeded(),
        "fix should not lose jobs: {} vs {}",
        with_fix.jobs_succeeded(),
        no_fix.jobs_succeeded()
    );
    // A zombie still has up to one disk-check interval (3 min) to poison
    // attempts before it self-terminates, so a handful of failures remain
    // possible at a 50% zombie rate; the bulk of the workload must pass.
    assert!(
        with_fix.jobs_succeeded() * 10 >= schedule.len() * 7,
        "with the fix, most of the workload completes: {}/{}",
        with_fix.jobs_succeeded(),
        schedule.len()
    );
}

#[test]
fn site_awareness_protects_against_site_outages() {
    use hog_core::config::ResourceConfig;
    use hog_sim_core::dist::{Exponential, UniformDuration};
    let schedule = mini_facebook(6);
    let mk = |placement: PlacementKind| {
        let mut cfg = ClusterConfig::hog(40, 4)
            .with_replication(2)
            .with_placement(placement);
        if let ResourceConfig::Grid { sites, .. } = &mut cfg.resource {
            for s in sites.iter_mut() {
                s.outage_mtbf = Some(Exponential::from_mean(SimDuration::from_secs(45 * 60)));
                s.outage_duration =
                    UniformDuration::new(SimDuration::from_mins(5), SimDuration::from_mins(10));
            }
        }
        cfg
    };
    let aware = run_workload(mk(PlacementKind::SiteAware), &schedule, HORIZON);
    let oblivious = run_workload(mk(PlacementKind::RackOblivious), &schedule, HORIZON);
    assert!(
        aware.missing_input_blocks <= oblivious.missing_input_blocks,
        "site-aware placement must not lose more inputs than oblivious \
         ({} vs {})",
        aware.missing_input_blocks,
        oblivious.missing_input_blocks
    );
    assert!(
        aware.jobs_succeeded() >= oblivious.jobs_succeeded(),
        "site awareness should preserve at least as many jobs"
    );
}

#[test]
fn dedicated_cluster_handles_the_mini_workload() {
    let schedule = mini_facebook(7);
    let r = run_workload(ClusterConfig::dedicated(1), &schedule, HORIZON);
    assert_eq!(r.jobs_succeeded(), schedule.len());
    // All maps on one site: locality should be total.
    assert_eq!(r.jt.remote, 0, "a one-site cluster has no remote maps");
}

/// Full-scale crossover check (the paper's headline claim). Heavy: run
/// with `cargo test --release -- --ignored`.
#[test]
#[ignore = "full-scale; minutes in release"]
fn fig4_crossover_near_100_nodes() {
    use hog_core::experiments::figure4;
    let fig = figure4(&[60, 99, 100, 132, 160], 2, 5);
    let crossover = fig
        .equivalence_at(0.05)
        .expect("some size must reach the baseline");
    assert!(
        (80..=140).contains(&crossover),
        "equivalent performance at {crossover} nodes; paper found [99,100]"
    );
    // Response must broadly decrease with pool size.
    let first = fig.hog.first().unwrap().mean();
    let last = fig.hog.last().unwrap().mean();
    assert!(first > last, "more nodes should be faster overall");
}

#[test]
fn high_replication_buys_data_locality() {
    // §IV-D: "The high replication factor for HOG allows for very good
    // data locality." With 10 replicas over ~25 nodes, nearly every map
    // should find its input on-node.
    let schedule = mini_facebook(8);
    let r = run_workload(
        ClusterConfig::hog(25, 9).with_mean_lifetime(SimDuration::from_secs(10_000_000)),
        &schedule,
        HORIZON,
    );
    let total = (r.jt.node_local + r.jt.site_local + r.jt.remote).max(1);
    let frac = r.jt.node_local as f64 / total as f64;
    assert!(
        frac > 0.6,
        "node-local fraction {frac:.2} too low ({}/{total})",
        r.jt.node_local
    );
    // And with replication 1 locality must drop measurably.
    let low = run_workload(
        ClusterConfig::hog(25, 9)
            .with_mean_lifetime(SimDuration::from_secs(10_000_000))
            .with_replication(1),
        &schedule,
        HORIZON,
    );
    let ltotal = (low.jt.node_local + low.jt.site_local + low.jt.remote).max(1);
    let lfrac = low.jt.node_local as f64 / ltotal as f64;
    assert!(
        lfrac < frac,
        "replication 1 should be less node-local: {lfrac:.2} vs {frac:.2}"
    );
}
