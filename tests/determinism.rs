//! Whole-stack determinism: identical seeds must replay identical runs,
//! different seeds must differ. This is the property that makes every
//! figure in EXPERIMENTS.md reproducible to the millisecond.

use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

fn schedule(seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 3,
        maps_at_facebook: (8, 8),
        fraction_at_facebook: 1.0,
        maps: 8,
        jobs_in_benchmark: 4,
        reduces: 2,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

fn fingerprint(r: &RunResult) -> (Option<u64>, u64, usize, u64, u64, String) {
    (
        r.response_time.map(|d| d.as_millis()),
        r.events,
        r.jobs_succeeded(),
        r.jt.node_local + r.jt.site_local + r.jt.remote,
        r.nn_counters.0,
        r.jobs
            .iter()
            .map(|j| format!("{:?}", j.finished.map(|t| t.as_millis())))
            .collect::<Vec<_>>()
            .join(","),
    )
}

#[test]
fn hog_runs_replay_bit_identically() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let run = || {
        let cfg = ClusterConfig::hog(20, 77).with_mean_lifetime(SimDuration::from_secs(1800));
        run_workload(cfg, &schedule(9), horizon)
    };
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn dedicated_runs_replay_bit_identically() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let run = || run_workload(ClusterConfig::dedicated(5), &schedule(10), horizon);
    assert_eq!(fingerprint(&run()), fingerprint(&run()));
}

#[test]
fn different_cluster_seeds_diverge() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let churn = SimDuration::from_secs(1800);
    let a = run_workload(
        ClusterConfig::hog(20, 1).with_mean_lifetime(churn),
        &schedule(9),
        horizon,
    );
    let b = run_workload(
        ClusterConfig::hog(20, 2).with_mean_lifetime(churn),
        &schedule(9),
        horizon,
    );
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "different seeds should produce different churn traces"
    );
}

#[test]
fn workload_seed_changes_submission_pattern() {
    let a = schedule(1);
    let b = schedule(2);
    let times_a: Vec<u64> = a.jobs().iter().map(|j| j.submit_at.as_millis()).collect();
    let times_b: Vec<u64> = b.jobs().iter().map(|j| j.submit_at.as_millis()).collect();
    assert_ne!(times_a, times_b);
}

#[test]
fn parallel_sweep_equals_serial_runs() {
    use hog_core::sweep::{run_sweep_schedules, SchedulePoint};
    let horizon = SimDuration::from_secs(24 * 3600);
    let mk = |seed| SchedulePoint {
        cfg: ClusterConfig::hog(15, seed),
        schedule: schedule(33),
    };
    let parallel = run_sweep_schedules(vec![mk(1), mk(2)], horizon, 2);
    let serial = run_workload(ClusterConfig::hog(15, 1), &schedule(33), horizon);
    assert_eq!(
        parallel[0].response_time.map(|d| d.as_millis()),
        serial.response_time.map(|d| d.as_millis())
    );
    assert_eq!(parallel[0].events, serial.events);
    assert_eq!(parallel.len(), 2);
}
