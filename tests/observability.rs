//! Observability-layer integration tests (hog-obs):
//!
//! * enabling tracing must not change the simulation — the RunResult is
//!   identical and the event count stays within the <1% overhead
//!   contract (it is exactly equal: tracing schedules nothing and
//!   consumes no randomness);
//! * traces are deterministic: same seed + config → byte-identical
//!   JSONL;
//! * the metrics registry samples every layer and two seeds diff
//!   without panicking.

use hog_repro::obs::{diff_registries, render_diff, to_jsonl, Layer};
use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

fn schedule(seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 3,
        maps_at_facebook: (8, 8),
        fraction_at_facebook: 1.0,
        maps: 8,
        jobs_in_benchmark: 4,
        reduces: 2,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

const HORIZON: SimDuration = SimDuration::from_secs(24 * 3600);

fn fingerprint(r: &RunResult) -> (Option<u64>, u64, usize, u64, u64, String) {
    (
        r.response_time.map(|d| d.as_millis()),
        r.events,
        r.jobs_succeeded(),
        r.jt.node_local + r.jt.site_local + r.jt.remote,
        r.nn_counters.0,
        r.jobs
            .iter()
            .map(|j| format!("{:?}", j.finished.map(|t| t.as_millis())))
            .collect::<Vec<_>>()
            .join(","),
    )
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let base = run_workload(ClusterConfig::hog(20, 11), &schedule(3), HORIZON);
    let traced = run_workload(
        ClusterConfig::hog(20, 11)
            .with_tracing(TraceMode::Full)
            .with_metrics(),
        &schedule(3),
        HORIZON,
    );
    assert!(base.trace.is_none(), "default config must trace nothing");
    assert!(base.metrics.is_none());
    assert_eq!(
        fingerprint(&base),
        fingerprint(&traced),
        "tracing altered the simulation"
    );
    // The <1% overhead contract, in events processed. Tracing schedules
    // no events of its own, so the counts are exactly equal.
    assert!(traced.events as f64 <= base.events as f64 * 1.01);
    let log = traced.trace.expect("full tracing keeps the log");
    assert!(log.recorded > 0, "a real run emits trace events");
    assert_eq!(log.dropped, 0, "full mode never evicts");
    assert_eq!(log.events.len() as u64, log.recorded);
}

#[test]
fn traces_are_deterministic_and_cover_every_layer() {
    let run = |_: ()| {
        run_workload(
            ClusterConfig::hog(20, 11).with_tracing(TraceMode::Full),
            &schedule(3),
            HORIZON,
        )
    };
    let a = run(());
    let b = run(());
    let ja = to_jsonl(&a.trace.as_ref().unwrap().events);
    let jb = to_jsonl(&b.trace.as_ref().unwrap().events);
    assert_eq!(ja, jb, "same seed + config must export byte-identical JSONL");

    let events = &a.trace.as_ref().unwrap().events;
    for layer in [Layer::Core, Layer::Grid, Layer::Hdfs, Layer::MapReduce, Layer::Net] {
        assert!(
            events.iter().any(|e| e.layer == layer),
            "no events from {layer}"
        );
    }
    // Causal order: time (then sequence) is monotone across the stream.
    for w in events.windows(2) {
        assert!(w[0].time <= w[1].time, "events out of order: {w:?}");
        assert!(w[0].seq < w[1].seq);
    }
}

#[test]
fn metrics_registry_samples_and_diffs() {
    let run = |seed: u64| {
        run_workload(
            ClusterConfig::hog(20, seed).with_metrics(),
            &schedule(3),
            HORIZON,
        )
    };
    let a = run(11);
    let b = run(12);
    let (ma, mb) = (a.metrics.unwrap(), b.metrics.unwrap());
    assert!(!ma.is_empty());
    assert!(
        ma.find("core/pool_usable").is_some_and(|s| !s.is_empty()),
        "pool gauge must have samples"
    );
    assert!(ma.find("mapreduce/maps_done").is_some());
    let diffs = diff_registries(&ma, &mb);
    assert_eq!(diffs.len(), ma.len(), "diff covers every registered series");
    let rendered = render_diff(&diffs, 10);
    assert!(rendered.contains('/'), "rendered diff names series: {rendered}");
    // Scores are sorted descending.
    for w in diffs.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}
