//! Cross-crate failure-path tests: the lessons of paper §IV-D (zombie
//! datanodes, disk overflow) and §III-B (fast failure detection) observed
//! through the full stack.

use hog_repro::prelude::*;
use hog_sim_core::units::GIB;
use hog_workload::facebook::Bin;

fn schedule(jobs: u32, maps: u32, reduces: u32, seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 4,
        maps_at_facebook: (maps, maps),
        fraction_at_facebook: 1.0,
        maps,
        jobs_in_benchmark: jobs,
        reduces,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

const HORIZON: SimDuration = SimDuration::from_secs(24 * 3600);

#[test]
fn tiny_scratch_disks_cause_disk_full_failures() {
    // 20 maps × 32 MiB of intermediate output per node on a 64 MiB
    // scratch disk: only two map outputs fit until the job retires its
    // intermediate data.
    let mut cfg = ClusterConfig::hog(6, 11)
        .with_mean_lifetime(SimDuration::from_secs(100_000_000));
    cfg.mr = cfg.mr.with_scratch(GIB / 16);
    let r = run_workload(cfg, &schedule(3, 20, 4, 12), HORIZON);
    assert!(
        r.jt.failures > 0,
        "scratch exhaustion must fail some attempts"
    );
    // Generous scratch: no failures on the same workload.
    let roomy = ClusterConfig::hog(6, 11)
        .with_mean_lifetime(SimDuration::from_secs(100_000_000));
    let r2 = run_workload(roomy, &schedule(3, 20, 4, 12), HORIZON);
    assert_eq!(r2.jt.failures, 0);
    assert_eq!(r2.jobs_succeeded(), 3);
}

#[test]
fn fast_detection_beats_stock_timeout_under_churn() {
    let churn = SimDuration::from_secs(20 * 60);
    let sched = schedule(4, 15, 4, 13);
    let fast = run_workload(
        ClusterConfig::hog(25, 14).with_mean_lifetime(churn),
        &sched,
        HORIZON,
    );
    let slow = run_workload(
        ClusterConfig::hog(25, 14)
            .with_mean_lifetime(churn)
            .with_dead_timeout(SimDuration::from_secs(630)),
        &sched,
        HORIZON,
    );
    let f = fast.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::INFINITY);
    let s = slow.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::INFINITY);
    assert!(
        f <= s,
        "30 s detection ({f}s) should not lose to 630 s detection ({s}s)"
    );
}

#[test]
fn zombies_without_fix_poison_task_execution() {
    let churn = SimDuration::from_secs(25 * 60);
    let sched = schedule(4, 10, 3, 15);
    let r = run_workload(
        ClusterConfig::hog(20, 16)
            .with_mean_lifetime(churn)
            .with_zombies(0.6, false),
        &sched,
        HORIZON,
    );
    assert!(
        r.cluster.zombie_task_failures > 0,
        "zombie trackers must accept-and-fail tasks"
    );
    // First-iteration HOG was genuinely broken at workload scale (the X3
    // ablation shows the collapse); at this mini scale the defence
    // layers — retry backoff, per-job blacklisting, excluded-nodes write
    // retries, fetch-failure map re-execution — may still save every job.
    // What must hold here is *termination* and that the poison was real.
    assert!(!r.stopped_early, "the run must terminate, not hang");
}

#[test]
fn disk_check_evicts_zombies_within_minutes() {
    let churn = SimDuration::from_secs(25 * 60);
    let sched = schedule(4, 10, 3, 15);
    let fixed = run_workload(
        ClusterConfig::hog(20, 16)
            .with_mean_lifetime(churn)
            .with_zombies(0.6, true),
        &sched,
        HORIZON,
    );
    let unfixed = run_workload(
        ClusterConfig::hog(20, 16)
            .with_mean_lifetime(churn)
            .with_zombies(0.6, false),
        &sched,
        HORIZON,
    );
    // Raw zombie-failure counts aren't monotone (evicting a zombie makes
    // the grid start a replacement, whose later preemption re-rolls the
    // zombie dice); what the fix buys is *job survival*.
    assert!(
        fixed.jobs_succeeded() >= unfixed.jobs_succeeded(),
        "the self-check should save jobs: fixed {}/{} vs unfixed {}/{}",
        fixed.jobs_succeeded(),
        fixed.jobs.len(),
        unfixed.jobs_succeeded(),
        unfixed.jobs.len()
    );
    assert!(
        fixed.jobs_succeeded() > 0,
        "with the fix, work must get through"
    );
}

#[test]
fn moon_baseline_runs_and_pins_anchor_replicas() {
    use hog_core::baselines::moon_config;
    let sched = schedule(3, 8, 2, 17);
    let cfg = moon_config(20, 4, 18);
    let r = run_workload(cfg, &sched, HORIZON);
    assert_eq!(
        r.jobs_succeeded(),
        3,
        "MOON config should run the workload: {:?}",
        r.stuck_jobs
    );
}

#[test]
fn hod_pays_reconstruction_overhead() {
    use hog_core::baselines::run_hod_workload;
    let sched = schedule(3, 8, 2, 19);
    let hod = run_hod_workload(
        &sched,
        10,
        SimDuration::from_secs(100_000_000),
        20,
        3,
    );
    assert_eq!(hod.jobs_succeeded, 3);
    assert!(
        hod.mean_overhead_secs > 60.0,
        "per-job cluster formation + staging must cost minutes, got {}",
        hod.mean_overhead_secs
    );
}
