//! Federation (hog-fed) end-to-end properties:
//!
//! 1. A **1-pool federation is the plain cluster**: the canonical outcome
//!    fingerprint (the same one gating the committed bench baselines) is
//!    bit-identical, because deferred routing replays the exact event
//!    sequence of a standalone run.
//! 2. Multi-pool runs complete, route every job, and actually move
//!    datasets across the WAN.
//! 3. Meta-scheduler routing is deterministic under a fixed seed.

use hog_bench::outcome_fingerprint;
use hog_fed::{assert_fed_finished, run_federation, FedConfig, RoutingPolicy};
use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

fn tiny_schedule(jobs: u32, maps: u32, reduces: u32, seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 1,
        maps_at_facebook: (maps, maps),
        fraction_at_facebook: 1.0,
        maps,
        jobs_in_benchmark: jobs,
        reduces,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

const HORIZON: SimDuration = SimDuration::from_secs(24 * 3600);

/// One pool, same config, same schedule: the federation must be a
/// transparent wrapper (fingerprint-identical to `run_workload`).
fn one_pool_identity(nodes: usize) {
    let schedule = tiny_schedule(5, 4, 1, 11);
    let cfg = ClusterConfig::hog(nodes, 5);
    let plain = hog_repro::core::driver::run_workload(cfg.clone(), &schedule, HORIZON);
    let fed = run_federation(FedConfig::new(vec![cfg], 5), &schedule, HORIZON);
    assert_fed_finished(&fed);
    assert_eq!(
        outcome_fingerprint(&plain),
        outcome_fingerprint(&fed.pools[0]),
        "1-pool federation diverged from the standalone cluster at {nodes} nodes"
    );
    assert_eq!(fed.jobs_succeeded(), plain.jobs_succeeded());
    assert_eq!(fed.wan_bytes, 0, "no WAN traffic with a single pool");
}

#[test]
fn one_pool_federation_is_fingerprint_identical_at_100_nodes() {
    one_pool_identity(100);
}

#[test]
fn one_pool_federation_is_fingerprint_identical_at_300_nodes() {
    one_pool_identity(300);
}

#[test]
fn two_pool_federation_completes_and_crosses_the_wan() {
    let schedule = tiny_schedule(6, 4, 1, 13);
    let pools = vec![ClusterConfig::hog(20, 3), ClusterConfig::hog(20, 4)];
    let fed = run_federation(
        FedConfig::new(pools, 9)
            .with_sharing(0.5, 1, 2)
            .with_audit(true),
        &schedule,
        HORIZON,
    );
    assert_fed_finished(&fed);
    assert_eq!(fed.jobs_succeeded(), 6, "{:?}", fed.jobs);
    assert_eq!(
        fed.routed_counts.iter().sum::<u64>(),
        6,
        "every job routed exactly once"
    );
    assert!(
        fed.wan_bytes > 0,
        "shared datasets must cross the inter-pool WAN"
    );
    assert!(fed.initial_stagings > 0);
    // The per-pool gauges were published under the fed layer.
    assert!(fed.metrics.find("fed/pool0_backlog").is_some());
    assert!(fed.metrics.find("fed/pool1_routed").is_some());
}

#[test]
fn random_routing_stages_datasets_on_demand() {
    // No up-front sharing: any job randomly routed off its home pool
    // must trigger an on-demand WAN staging and still succeed.
    let schedule = tiny_schedule(8, 3, 1, 17);
    let pools = vec![ClusterConfig::hog(20, 3), ClusterConfig::hog(20, 4)];
    let fed = run_federation(
        FedConfig::new(pools, 21)
            .with_routing(RoutingPolicy::Random)
            .with_audit(true),
        &schedule,
        HORIZON,
    );
    assert_fed_finished(&fed);
    assert_eq!(fed.jobs_succeeded(), 8, "{:?}", fed.jobs);
    assert!(
        fed.route_stagings > 0,
        "with seed 21 some jobs must land off-home: {:?}",
        fed.routed_to
    );
    assert!(fed.wan_bytes > 0);
}

#[test]
fn meta_scheduler_routing_is_deterministic_under_fixed_seed() {
    let schedule = tiny_schedule(8, 3, 1, 19);
    let run = |policy, seed| {
        let pools = vec![ClusterConfig::hog(20, 3), ClusterConfig::hog(20, 4)];
        run_federation(
            FedConfig::new(pools, seed).with_routing(policy),
            &schedule,
            HORIZON,
        )
    };
    for policy in [
        RoutingPolicy::locality_default(),
        RoutingPolicy::Random,
    ] {
        let a = run(policy, 33);
        let b = run(policy, 33);
        assert_eq!(a.routed_to, b.routed_to, "{policy:?} routing replayed");
        for (pa, pb) in a.pools.iter().zip(&b.pools) {
            assert_eq!(
                outcome_fingerprint(pa),
                outcome_fingerprint(pb),
                "{policy:?} pool outcomes replayed"
            );
        }
    }
    // Different federation seeds must steer Random elsewhere.
    let a = run(RoutingPolicy::Random, 33);
    let b = run(RoutingPolicy::Random, 34);
    assert_ne!(a.routed_to, b.routed_to, "Random ignores its seed");
}
