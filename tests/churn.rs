//! Churn-model guarantees: the calibrated generator must never disturb
//! the legacy exponential path (BENCH_scale's fingerprints are history —
//! see EXPERIMENTS.md), and must itself replay bit-identically so the
//! BENCH_churn study is reproducible.

use hog_bench::outcome_fingerprint;
use hog_repro::grid::churn::ChurnModel;
use hog_repro::prelude::*;
use proptest::prelude::*;

fn truncated(seed: u64) -> SubmissionSchedule {
    SubmissionSchedule::facebook_truncated(seed)
}

fn scale_fingerprint(nodes: usize, seed: u64) -> String {
    // Exactly BENCH_scale's cell: `hog(nodes, seed)` with the truncated
    // Facebook grid under a 100 h horizon (crates/bench/src/bin/scale.rs).
    let r = run_workload(
        ClusterConfig::hog(nodes, seed),
        &truncated(1000 + seed),
        SimDuration::from_secs(100 * 3600),
    );
    assert!(!r.stopped_early);
    outcome_fingerprint(&r)
}

/// The anchors every churn-layer change must hold: byte-identical
/// outcomes for the default (exponential, prediction off) configuration
/// at BENCH_scale's dev tiers. These constants are copied from
/// BENCH_scale.baseline.json — if this test fails, the churn layer leaked
/// into the legacy path.
#[test]
fn default_churn_keeps_scale_fingerprints() {
    assert_eq!(scale_fingerprint(100, 7), "cf17f90b65a09cc8");
    assert_eq!(scale_fingerprint(300, 7), "3eb6cca796295e8b");
}

/// The 1101-node anchor from the paper's largest run; minutes in a debug
/// test build, so it only runs when asked for by name.
#[test]
#[ignore = "full-scale anchor; run with --ignored (minutes in debug)"]
fn default_churn_keeps_paper_scale_fingerprint() {
    assert_eq!(scale_fingerprint(1101, 7), "d451d58425c46112");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `ChurnModel::Exponential` is not merely *similar* to the
    /// pre-churn-layer draw — it routes through the identical one-draw
    /// path, so spelling it explicitly must replay the default run
    /// bit-for-bit at any scale and seed.
    #[test]
    fn explicit_exponential_matches_default(
        nodes in 20usize..60,
        seed in 0u64..1000,
    ) {
        let horizon = SimDuration::from_secs(24 * 3600);
        let schedule = truncated(seed);
        let a = run_workload(ClusterConfig::hog(nodes, seed), &schedule, horizon);
        let b = run_workload(
            ClusterConfig::hog(nodes, seed).with_churn_model(ChurnModel::Exponential),
            &schedule,
            horizon,
        );
        prop_assert_eq!(outcome_fingerprint(&a), outcome_fingerprint(&b));
    }
}

/// Calibrated churn is seeded from the same per-node streams as the
/// exponential draw: the same seed must replay the identical preemption
/// schedule (and therefore the identical run), while a different cluster
/// seed must shift it.
#[test]
fn calibrated_churn_replays_deterministically() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let schedule = truncated(77);
    let run = |seed| {
        run_workload(
            ClusterConfig::hog(60, seed).with_calibrated_churn(),
            &schedule,
            horizon,
        )
    };
    let a = outcome_fingerprint(&run(7));
    assert_eq!(a, outcome_fingerprint(&run(7)), "same seed must replay");
    assert_ne!(
        a,
        outcome_fingerprint(&run(8)),
        "different seeds must draw different preemption schedules"
    );
}

/// The calibrated generator actually changes the death process — if it
/// ever silently fell back to the exponential draw, BENCH_churn's
/// synthetic-vs-calibrated columns would compare a model to itself.
#[test]
fn calibrated_churn_diverges_from_exponential() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let schedule = truncated(42);
    let exp = run_workload(ClusterConfig::hog(60, 7), &schedule, horizon);
    let cal = run_workload(
        ClusterConfig::hog(60, 7).with_calibrated_churn(),
        &schedule,
        horizon,
    );
    assert_ne!(outcome_fingerprint(&exp), outcome_fingerprint(&cal));
}
