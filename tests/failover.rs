//! Master-failover integration tests: checkpointed Namenode/JobTracker
//! recovery under chaos-injected master crashes.
//!
//! Covers the recovery protocol end-to-end (crash → detection →
//! promotion → re-registration → replay → completion), the interaction
//! of `MasterStall` with the checkpoint cadence, mirror-mode fingerprint
//! identity, and a property test that `restore(checkpoint(state))` is
//! bit-identical for randomized master states.

use hog_repro::core::{FailoverConfig, MasterStack, SingleMasterStack};
use hog_repro::hdfs::{HdfsConfig, Namenode, SiteAwarePolicy};
use hog_repro::mapreduce::{JobSubmission, JobTracker, MrParams};
use hog_repro::net::Topology;
use hog_repro::prelude::*;
use hog_repro::sim::units::GIB;
use hog_repro::sim::SimRng;
use hog_workload::facebook::Bin;
use proptest::prelude::*;

fn schedule(seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 3,
        maps_at_facebook: (8, 8),
        fraction_at_facebook: 1.0,
        maps: 8,
        jobs_in_benchmark: 4,
        reduces: 2,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

/// Job-outcome fingerprint. Deliberately excludes the raw event count:
/// configs under comparison here differ in *inert* events (the
/// `MasterCrash` chaos dispatch itself), which must not affect any
/// simulated outcome.
fn outcome(r: &RunResult) -> (Option<u64>, usize, u64, u64, String) {
    (
        r.response_time.map(|d| d.as_millis()),
        r.jobs_succeeded(),
        r.jt.node_local + r.jt.site_local + r.jt.remote,
        r.nn_counters.0,
        r.jobs
            .iter()
            .map(|j| format!("{:?}", j.finished.map(|t| t.as_millis())))
            .collect::<Vec<_>>()
            .join(","),
    )
}

/// Full fingerprint (event count included) for replay-identity checks.
fn fingerprint(r: &RunResult) -> (u64, (Option<u64>, usize, u64, u64, String)) {
    (r.events, outcome(r))
}

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

const HORIZON: SimDuration = SimDuration::from_secs(24 * 3600);

fn base_cfg(seed: u64) -> ClusterConfig {
    ClusterConfig::hog(20, seed).with_mean_lifetime(secs(1800))
}

fn crash_at(at: u64) -> FaultPlan {
    FaultPlan::new().at(secs(at), Fault::MasterCrash)
}

#[test]
fn crash_mid_run_recovers_and_completes_every_job() {
    let cfg = base_cfg(21)
        .with_failover(secs(120), secs(30))
        .with_fault_plan(crash_at(300));
    let r = run_workload(cfg, &schedule(9), HORIZON);
    assert!(!r.stopped_early, "stuck jobs: {:?}", r.stuck_jobs);
    assert_eq!(
        r.jobs_succeeded(),
        r.jobs.len(),
        "every job must complete across the failover"
    );
    assert_eq!(r.failover.crashes, 1);
    assert_eq!(r.failover.promotions, 1);
    assert_eq!(
        r.failover.last_recovery,
        secs(30),
        "promotion fires exactly at the detection timeout"
    );
    // The edit window lost is bounded by the checkpoint interval plus
    // one master-tick of cadence quantization.
    assert!(
        r.failover.last_lost_window <= secs(120) + secs(60),
        "lost window {:?} exceeds interval + tick slack",
        r.failover.last_lost_window
    );
    assert!(
        r.failover.reregistrations > 0,
        "promotion must re-register the surviving workers"
    );
    assert!(
        !r.failover.checkpoints.is_empty(),
        "periodic checkpointing must have run"
    );

    // Headline bound: completion overhead versus the crash-free twin is
    // detection + lost edit window + replay of the killed in-flight
    // work. The bench sweeps this precisely; here we assert a generous
    // envelope to stay robust across schedules.
    let free = run_workload(base_cfg(21), &schedule(9), HORIZON);
    let (rt, ft) = (r.response_time.unwrap(), free.response_time.unwrap());
    let overhead = rt.as_secs_f64() - ft.as_secs_f64();
    assert!(
        overhead <= (30 + 120) as f64 + 2400.0,
        "recovery overhead {overhead:.0}s exceeds detection + edit window + replay envelope"
    );
}

#[test]
fn failover_runs_replay_bit_identically() {
    let run = || {
        let cfg = base_cfg(77)
            .with_failover(secs(120), secs(30))
            .with_fault_plan(crash_at(400));
        run_workload(cfg, &schedule(11), HORIZON)
    };
    let a = run();
    let b = run();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "crash + recovery must replay byte-identically"
    );
    assert_eq!(a.failover.checkpoints, b.failover.checkpoints);
}

#[test]
fn master_crash_without_failover_config_is_recorded_and_ignored() {
    // The paper's single-master deployment: nothing to promote, nothing
    // changes. The run with the fault is outcome-identical to the run
    // without it.
    let with_fault = run_workload(
        base_cfg(33).with_fault_plan(crash_at(300)),
        &schedule(13),
        HORIZON,
    );
    let without = run_workload(base_cfg(33), &schedule(13), HORIZON);
    assert_eq!(outcome(&with_fault), outcome(&without));
    assert_eq!(with_fault.failover.crashes, 0);
    assert_eq!(with_fault.failover.promotions, 0);
}

#[test]
fn mirror_failover_crash_is_outcome_identical_to_crash_free_run() {
    // Interval zero = synchronous standby: a crash loses nothing and
    // causes no downtime, so the run is fingerprint-identical to a
    // crash-free one (the acceptance identity for continuous
    // checkpointing).
    let crash_free = run_workload(base_cfg(44), &schedule(15), HORIZON);
    let mirrored = run_workload(
        base_cfg(44)
            .with_failover(SimDuration::ZERO, secs(30))
            .with_fault_plan(crash_at(300)),
        &schedule(15),
        HORIZON,
    );
    assert_eq!(outcome(&crash_free), outcome(&mirrored));
    assert_eq!(mirrored.failover.crashes, 1);
    assert_eq!(mirrored.failover.promotions, 1);
    assert_eq!(mirrored.failover.last_recovery, SimDuration::ZERO);
    assert!(
        mirrored.failover.checkpoints.is_empty(),
        "mirror mode takes no periodic checkpoints"
    );
}

#[test]
fn master_stall_defers_checkpoints_outside_the_stall_window() {
    // Regression (stall × checkpoint lifecycle): a stalled master's
    // checkpoint thread is as suspended as the rest of it. No checkpoint
    // may be stamped inside the stall window — the cadence resumes after
    // the stall, without double-applying the missed snapshot.
    let stall_from = 120u64;
    let stall_secs = 240u64;
    let cfg = base_cfg(55)
        .with_failover(secs(60), secs(30))
        .with_fault_plan(FaultPlan::new().at(
            secs(stall_from),
            Fault::MasterStall {
                duration: secs(stall_secs),
            },
        ));
    let r = run_workload(cfg, &schedule(17), HORIZON);
    assert!(!r.stopped_early, "stuck jobs: {:?}", r.stuck_jobs);
    let start = r.workload_start.expect("workload ran");
    let lo = start + secs(stall_from);
    let hi = start + secs(stall_from + stall_secs);
    let inside: Vec<_> = r
        .failover
        .checkpoints
        .iter()
        .filter(|&&t| t > lo && t < hi)
        .collect();
    assert!(
        inside.is_empty(),
        "checkpoints stamped inside the stall window: {inside:?}"
    );
    assert!(
        r.failover.checkpoints.iter().any(|&t| t <= lo),
        "a checkpoint must precede the stall"
    );
    assert!(
        r.failover.checkpoints.iter().any(|&t| t >= hi),
        "the cadence must resume after the stall"
    );
    // No double-apply: checkpoint stamps are strictly increasing.
    assert!(
        r.failover.checkpoints.windows(2).all(|w| w[0] < w[1]),
        "duplicate or reordered checkpoint stamps: {:?}",
        r.failover.checkpoints
    );
}

#[test]
fn stall_then_crash_still_recovers() {
    // A stall immediately before the crash must not corrupt the
    // checkpoint the standby later restores.
    let cfg = base_cfg(66)
        .with_failover(secs(120), secs(30))
        .with_fault_plan(
            FaultPlan::new()
                .at(secs(150), Fault::MasterStall { duration: secs(60) })
                .at(secs(300), Fault::MasterCrash),
        );
    let r = run_workload(cfg, &schedule(19), HORIZON);
    assert!(!r.stopped_early, "stuck jobs: {:?}", r.stuck_jobs);
    assert_eq!(r.jobs_succeeded(), r.jobs.len());
    assert_eq!(r.failover.crashes, 1);
    assert_eq!(r.failover.promotions, 1);
}

/// Build a pseudo-random master pair (namespace + block map + datanode
/// table on the namenode; jobs, trackers and live attempts on the
/// jobtracker) from a seed, exercising the real mutation API.
fn random_masters(
    seed: u64,
    nodes: usize,
    files: usize,
    jobs: usize,
    beats: usize,
) -> (Topology, Namenode, JobTracker) {
    let mut topo = Topology::new();
    let site_a = topo.add_site("SITE_A", "a.example.org");
    let site_b = topo.add_site("SITE_B", "b.example.org");
    let node_ids: Vec<_> = (0..nodes)
        .map(|i| {
            let site = if i % 2 == 0 { site_a } else { site_b };
            topo.add_node_named(site, format!("w{i}.example.org"))
        })
        .collect();
    let mut driver = SimRng::seed_from_u64(seed ^ 0x0fa1_10e4);
    let t0 = SimTime::ZERO + secs(10);

    let mut nn = Namenode::new(
        HdfsConfig::hog().with_capacity(4 * GIB),
        Box::new(SiteAwarePolicy),
        SimRng::seed_from_u64(seed),
    );
    for &n in &node_ids {
        nn.register_datanode(t0, n);
    }
    let mut blocks = Vec::new();
    for f in 0..files {
        let fid = nn.create_file(format!("/in/f{f}"), 3);
        let n_blocks = 1 + driver.index(3);
        for _ in 0..n_blocks {
            let size = (8 + driver.index(64) as u64) * 1024 * 1024;
            if let Some((b, targets)) = nn.allocate_block(fid, size, None, &topo) {
                // Commit to a random prefix of the pipeline so some
                // blocks are healthy, some under-replicated.
                let keep = 1 + driver.index(targets.len());
                nn.commit_block(b, &targets[..keep]);
                blocks.push((b, size));
            }
        }
        if driver.chance(0.5) {
            nn.complete_file(fid);
        }
    }
    // A couple of pathological datanodes for good measure.
    if nodes > 2 {
        nn.mark_storage_failed(node_ids[0]);
        nn.mark_silent(t0 + secs(5), node_ids[1]);
    }

    let mut jt = JobTracker::new(MrParams::hog(), SimRng::seed_from_u64(seed ^ 1));
    for (i, &n) in node_ids.iter().enumerate() {
        let site = if i % 2 == 0 { site_a } else { site_b };
        jt.register_tracker(t0, n, site, 1, 1);
    }
    for j in 0..jobs {
        let n_inputs = (1 + driver.index(blocks.len().max(1))).min(blocks.len());
        let input_blocks: Vec<_> = blocks[..n_inputs].to_vec();
        let split_locations = input_blocks
            .iter()
            .map(|&(b, _)| nn.block(b).replicas.iter().copied().collect())
            .collect();
        jt.submit_job(
            t0 + secs(j as u64),
            JobSubmission {
                input_blocks,
                split_locations,
                reduces: driver.index(3) as u32,
                map_cpu_secs: 30.0,
                map_output_bytes: 1 << 20,
                reduce_cpu_secs: 20.0,
                reduce_output_bytes: 1 << 20,
                output_replication: 2,
            },
            &topo,
        );
    }
    // Drive some heartbeats so attempts start and the scheduler/rng
    // state moves — the checkpoint must capture all of it.
    for k in 0..beats {
        let n = node_ids[k % node_ids.len()];
        let _ = jt.heartbeat(t0 + secs(20 + k as u64), n, &topo);
    }
    (topo, nn, jt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `restore(checkpoint(state))` is bit-identical for randomized
    /// namespace/job-ledger states: the deterministic fsimage and ledger
    /// exports of the restored masters match the originals exactly, and
    /// the checkpoint fingerprint survives a crash/promote cycle.
    #[test]
    fn prop_checkpoint_restore_roundtrip(
        seed in 0u64..100_000,
        nodes in 3usize..10,
        files in 1usize..5,
        jobs in 1usize..4,
        beats in 0usize..16,
    ) {
        let (_topo, nn, jt) = random_masters(seed, nodes, files, jobs, beats);
        let fsimage = nn.export_fsimage();
        let ledger = jt.export_ledger();
        let mut stack =
            SingleMasterStack::new(nn, jt, Some(FailoverConfig::every(secs(60))));
        let t = SimTime::ZERO + secs(100);
        stack.take_checkpoint(t);
        let cp = stack.checkpoint().expect("just taken");
        // checkpoint == live state, bit for bit.
        prop_assert_eq!(cp.nn.export_fsimage(), fsimage.clone());
        prop_assert_eq!(cp.jt.export_ledger(), ledger.clone());
        let fp = cp.fingerprint();
        // Crash and promote: the restored live masters equal the
        // checkpoint (and therefore the original state) exactly.
        prop_assert!(stack.crash(t + secs(10)));
        prop_assert!(stack.promote(t + secs(40)).is_some());
        prop_assert_eq!(stack.nn.export_fsimage(), fsimage);
        prop_assert_eq!(stack.jt.export_ledger(), ledger);
        stack.take_checkpoint(t + secs(50));
        prop_assert_eq!(stack.checkpoint().expect("retaken").fingerprint(), fp);
    }
}
