//! Adaptive per-block replication guarantees (X17): the availability
//! policy must be invisible when off — BENCH_scale's pinned fingerprints
//! are history — and when armed must trade flat-10's blanket replication
//! for risk-tracked per-block targets, deterministically.

use hog_bench::outcome_fingerprint;
use hog_repro::hdfs::AvailabilityPolicy;
use hog_repro::prelude::*;

fn truncated(seed: u64) -> SubmissionSchedule {
    SubmissionSchedule::facebook_truncated(seed)
}

/// The policy-off acceptance anchor: with `cfg.hdfs.availability` unset
/// (the default), every namenode change in this PR — per-block target
/// plumbing, the bucketed-queue rework, fair-dispatch machinery, trim
/// paths — must leave BENCH_scale's dev-tier cell byte-identical. The
/// constant is copied from BENCH_scale.baseline.json.
#[test]
fn policy_off_keeps_pinned_scale_fingerprint() {
    let r = run_workload(
        ClusterConfig::hog(100, 7),
        &truncated(1007),
        SimDuration::from_secs(100 * 3600),
    );
    assert!(!r.stopped_early);
    assert_eq!(outcome_fingerprint(&r), "cf17f90b65a09cc8");
    // And the policy's side-channels stay silent: no retargets, no
    // trims, no read accounting.
    assert_eq!(r.availability, (0, 0, 0));
    let nn = r.nn_counters;
    assert!(nn.0 > 0, "churn must have forced re-replication");
}

/// Armed against calibrated churn, the policy births blocks at the
/// Trua initial target (6) instead of flat 10 and trims excess when
/// targets drop — materially fewer replica bytes for the same workload,
/// with every job still finishing.
#[test]
fn armed_policy_saves_replica_bytes_and_completes() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let schedule = truncated(42);
    let flat = run_workload(
        ClusterConfig::hog(60, 42).with_calibrated_churn_at(8.0),
        &schedule,
        horizon,
    );
    let armed = run_workload(
        ClusterConfig::hog(60, 42)
            .with_calibrated_churn_at(8.0)
            .with_availability_policy(AvailabilityPolicy::trua_default()),
        &schedule,
        horizon,
    );
    assert!(!flat.stopped_early && !armed.stopped_early);
    assert_eq!(flat.availability, (0, 0, 0), "flat run: policy inert");
    assert!(
        armed.replica_bytes < flat.replica_bytes,
        "adaptive targets must write fewer replica bytes: {} vs {}",
        armed.replica_bytes,
        flat.replica_bytes
    );
    assert_eq!(
        armed.jobs_succeeded(),
        flat.jobs_succeeded(),
        "thinner replication must not cost job completions at this scale"
    );
    assert_eq!(armed.missing_blocks, 0);
}

/// The armed policy is part of the deterministic simulation: same seed,
/// same sweep decisions, same outcome — different seed diverges.
#[test]
fn armed_policy_is_deterministic() {
    let run = |seed: u64| {
        let r = run_workload(
            ClusterConfig::hog(50, seed)
                .with_calibrated_churn_at(8.0)
                .with_availability_policy(AvailabilityPolicy::trua_default()),
            &truncated(seed),
            SimDuration::from_secs(24 * 3600),
        );
        (outcome_fingerprint(&r), r.availability, r.replica_bytes)
    };
    assert_eq!(run(9), run(9), "same seed must replay identically");
    assert_ne!(run(9).0, run(10).0, "different seeds must diverge");
}
