//! Chaos-layer integration tests: deterministic replay under a fault
//! plan, graceful degradation, and the two negative paths (the invariant
//! auditor catching corrupted accounting, the watchdog catching a run
//! that cannot make progress).

use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

fn schedule(seed: u64) -> SubmissionSchedule {
    let bin = Bin {
        number: 3,
        maps_at_facebook: (8, 8),
        fraction_at_facebook: 1.0,
        maps: 8,
        jobs_in_benchmark: 4,
        reduces: 2,
    };
    SubmissionSchedule::from_bins(&[bin], seed)
}

fn fingerprint(r: &RunResult) -> (Option<u64>, u64, usize, u64, u64, String) {
    (
        r.response_time.map(|d| d.as_millis()),
        r.events,
        r.jobs_succeeded(),
        r.jt.node_local + r.jt.site_local + r.jt.remote,
        r.nn_counters.0,
        r.jobs
            .iter()
            .map(|j| format!("{:?}", j.finished.map(|t| t.as_millis())))
            .collect::<Vec<_>>()
            .join(","),
    )
}

const SITES: [&str; 5] = [
    "FNAL_FERMIGRID",
    "USCMS-FNAL-WC1",
    "UCSDT2",
    "AGLT2",
    "MIT_CMS",
];

fn chaotic_cfg(seed: u64, intensity: u32) -> ClusterConfig {
    ClusterConfig::hog(20, seed)
        .with_mean_lifetime(SimDuration::from_secs(1800))
        .with_fault_plan(FaultPlan::escalating(seed, intensity, &SITES))
        .with_audit(true)
        .with_watchdog(SimDuration::from_secs(3600))
}

#[test]
fn chaotic_runs_replay_bit_identically() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let run = || run_workload(chaotic_cfg(77, 2), &schedule(9), horizon);
    let a = run();
    let b = run();
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "same seed + same fault plan must replay byte-identically"
    );
    assert_eq!(a.chaos_failure, b.chaos_failure);
}

#[test]
fn chaos_seed_changes_the_run() {
    let horizon = SimDuration::from_secs(24 * 3600);
    let a = run_workload(chaotic_cfg(77, 2), &schedule(9), horizon);
    let b = run_workload(chaotic_cfg(78, 2), &schedule(9), horizon);
    assert_ne!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn audited_chaotic_run_survives_and_completes() {
    // Moderate chaos with the auditor on every master tick: the workload
    // must still finish, with zero invariant violations and no livelock.
    let horizon = SimDuration::from_secs(24 * 3600);
    let r = run_workload(chaotic_cfg(42, 2), &schedule(11), horizon);
    assert!(
        r.chaos_failure.is_none(),
        "no invariant may break under faults: {:?}",
        r.chaos_failure
    );
    assert!(!r.stopped_early, "stuck jobs: {:?}", r.stuck_jobs);
    assert!(
        r.jobs_succeeded() > 0,
        "chaos at intensity 2 should not kill every job"
    );
}

#[test]
fn corrupted_accounting_trips_the_auditor() {
    // CorruptAccounting skews one datanode's `used` bytes without
    // touching its block list — exactly the inconsistency the auditor
    // cross-checks. The run must abort with a structured dump naming the
    // hdfs layer, not plough on over corrupt books.
    let horizon = SimDuration::from_secs(24 * 3600);
    let cfg = ClusterConfig::hog(15, 5)
        .with_fault_plan(FaultPlan::new().at(
            SimDuration::from_secs(120),
            Fault::CorruptAccounting { delta_bytes: 1 << 20 },
        ))
        .with_audit(true);
    let r = run_workload(cfg, &schedule(7), horizon);
    match &r.chaos_failure {
        Some(ChaosFailure::InvariantViolation { at, violations, dump }) => {
            assert!(*at >= SimTime::ZERO + SimDuration::from_secs(120));
            assert!(!violations.is_empty());
            assert!(
                violations.iter().any(|v| v.layer == "hdfs"),
                "the skewed books are an hdfs-layer violation: {violations:?}"
            );
            assert!(dump.contains("invariant audit failed"), "dump: {dump}");
        }
        other => panic!("expected an invariant violation, got {other:?}"),
    }
}

#[test]
fn auditor_dump_carries_the_flight_recorder_tail() {
    // Same trip-wire as above, but with the flight recorder armed: the
    // failure dump must carry the last trace events, and the tail must be
    // causally consistent — no recorded event may postdate the failure.
    let horizon = SimDuration::from_secs(24 * 3600);
    let cfg = ClusterConfig::hog(15, 5)
        .with_fault_plan(FaultPlan::new().at(
            SimDuration::from_secs(120),
            Fault::CorruptAccounting { delta_bytes: 1 << 20 },
        ))
        .with_audit(true)
        .with_flight_recorder(40);
    let r = run_workload(cfg, &schedule(7), horizon);
    let failure = r.chaos_failure.as_ref().expect("auditor must trip");
    let dump = failure.dump();
    assert!(
        dump.contains("flight recorder"),
        "dump must embed the recorder tail: {dump}"
    );
    assert!(
        dump.contains("chaos_inject"),
        "the injected fault itself is a trace event and belongs in the tail: {dump}"
    );
    let log = r.trace.as_ref().expect("ring tracing produces a log");
    assert!(!log.events.is_empty());
    let last = log.events.last().unwrap();
    assert!(
        last.time <= failure.at(),
        "last trace event ({:?}) postdates the failure ({:?})",
        last.time,
        failure.at()
    );
}

#[test]
fn wedged_cluster_trips_the_watchdog() {
    // A grid whose sites have zero slots can never form a pool: no
    // progress counter ever moves. The watchdog must abort the run after
    // its window instead of burning the full 24 h horizon.
    let horizon = SimDuration::from_secs(24 * 3600);
    let window = SimDuration::from_secs(1800);
    let mut cfg = ClusterConfig::hog(10, 3).with_watchdog(window);
    if let ResourceConfig::Grid { sites, .. } = &mut cfg.resource {
        for s in sites.iter_mut() {
            s.max_slots = 0;
        }
    }
    let r = run_workload(cfg, &schedule(5), horizon);
    match &r.chaos_failure {
        Some(ChaosFailure::Livelock { stalled_for, dump, .. }) => {
            assert!(*stalled_for >= window);
            assert!(dump.contains("frozen signature"), "dump: {dump}");
            assert!(dump.contains("phase=0"), "still Forming: {dump}");
        }
        other => panic!("expected a livelock report, got {other:?}"),
    }
    // The whole point: the run stops around the window, not the horizon.
    assert!(
        r.end_time < SimTime::ZERO + SimDuration::from_secs(3 * 3600),
        "watchdog should cut the run short, ended at {:?}",
        r.end_time
    );
}
