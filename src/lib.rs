//! # hog-repro — HOG: Distributed Hadoop MapReduce on the Grid
//!
//! A from-scratch Rust reproduction of *HOG: Distributed Hadoop MapReduce
//! on the Grid* (He, Weitzel, Swanson, Lu — SC Companion 2012) as a
//! deterministic discrete-event simulation. This facade crate re-exports
//! the workspace's public API; see the individual crates for depth:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] (`hog-sim-core`) | DES kernel: clock, event queue, RNG, metrics |
//! | [`net`] (`hog-net`) | topology + max-min fair fluid network |
//! | [`sched`] (`hog-sched`) | slot-assignment policies: FIFO, fair+delay, failure-aware |
//! | [`grid`] (`hog-grid`) | OSG substrate: glideins, preemption, outages |
//! | [`hdfs`] (`hog-hdfs`) | namenode, datanodes, site-aware placement |
//! | [`mapreduce`] (`hog-mapreduce`) | JobTracker/TaskTrackers, shuffle |
//! | [`workload`] (`hog-workload`) | Facebook schedule (Tables I & II) |
//! | [`chaos`] (`hog-chaos`) | fault plans, invariant auditing, livelock watchdog |
//! | [`obs`] (`hog-obs`) | structured tracing, flight recorder, metrics registry |
//! | [`core`] (`hog-core`) | the HOG system, baselines, experiments |
//! | [`fed`] (`hog-fed`) | federated multi-pool HOG: meta-scheduler + cross-pool placement |
//!
//! ## Quickstart
//!
//! ```no_run
//! use hog_repro::prelude::*;
//!
//! // The paper's headline experiment at one point: HOG with a 100-node
//! // pool versus the dedicated 100-core cluster.
//! let schedule = SubmissionSchedule::facebook_truncated(42);
//! let horizon = SimDuration::from_secs(60 * 3600);
//! let hog = run_workload(ClusterConfig::hog(100, 1), &schedule, horizon);
//! let cluster = run_workload(ClusterConfig::dedicated(1), &schedule, horizon);
//! println!(
//!     "HOG-100: {:?}  vs cluster: {:?}",
//!     hog.response_time, cluster.response_time
//! );
//! ```

pub use hog_chaos as chaos;
pub use hog_core as core;
pub use hog_fed as fed;
pub use hog_grid as grid;
pub use hog_hdfs as hdfs;
pub use hog_mapreduce as mapreduce;
pub use hog_net as net;
pub use hog_obs as obs;
pub use hog_sched as sched;
pub use hog_sim_core as sim;
pub use hog_workload as workload;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use hog_chaos::{ChaosFailure, Fault, FaultPlan};
    pub use hog_core::driver::{run_workload, JobOutcome, RunResult};
    pub use hog_core::{
        ChaosOptions, ClusterConfig, FailoverConfig, PlacementKind, ResourceConfig, SchedPolicy,
    };
    pub use hog_fed::{run_federation, FedConfig, FedResult, RoutingPolicy};
    pub use hog_obs::{ObsOptions, TraceLog, TraceMode};
    pub use hog_sim_core::{SimDuration, SimTime};
    pub use hog_workload::SubmissionSchedule;
}
